(** A compact tree-based reliable multicast in the style of RMTP/LBRRM:
    the baseline family the paper contrasts RRMP with.

    Each region designates its lowest-numbered member as the {e repair
    server}. Receivers NACK their region's server for missing messages
    (retrying on a timer); the server buffers {e every} data packet for
    the whole session and answers retransmissions. A server missing a
    message NACKs the server of its parent region and relays the repair
    when it arrives. The load-balance and overhead experiments use this
    to show what RRMP's spreading buys: here one node per region bears
    the entire buffering and retransmission burden. *)

type t

type wire

val create :
  ?seed:int ->
  ?latency:Latency.t ->
  ?loss:Loss.model ->
  ?bandwidth:float ->
  ?nack_timeout:float ->
  ?session_interval:float ->
  topology:Topology.t ->
  unit ->
  t
(** [nack_timeout] defaults to one intra-region RTT estimate.
    [bandwidth] (bytes/ms) bounds each node's egress — with repairs
    serialized at the server, this exposes the implosion problem
    distributed recovery avoids. *)

val net : t -> wire Netsim.Network.t

val sim : t -> Engine.Sim.t

val repair_server : t -> Region_id.t -> Node_id.t

val is_server : t -> Node_id.t -> bool

val multicast : t -> ?size:int -> unit -> Protocol.Msg_id.t
(** The sender (node 0) multicasts the next message via lossy IP
    multicast. *)

val multicast_reaching :
  t -> ?size:int -> reach:(Node_id.t -> bool) -> unit -> Protocol.Msg_id.t

val send_session : t -> unit

val run : ?until:float -> ?max_events:int -> t -> unit

val count_received : t -> Protocol.Msg_id.t -> int

val received_by_all : t -> Protocol.Msg_id.t -> bool

val buffer_of : t -> Node_id.t -> Rrmp.Buffer.t
(** Occupancy accounting per member (servers hold everything; plain
    receivers buffer nothing). *)

val members : t -> Node_id.t list
