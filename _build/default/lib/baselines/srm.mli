(** A scoped implementation of SRM-style error recovery (Floyd,
    Jacobson, McCanne, Liu & Zhang, SIGCOMM 1995) — the flat
    NACK/repair-suppression protocol the paper contrasts with
    hierarchical randomized recovery.

    Mechanics implemented:
    - loss detection by sequence gaps and session messages;
    - on detecting a loss, a receiver schedules a {e request} multicast
      after a uniform delay in [\[c1·d, (c1+c2)·d\]], where [d] is its
      estimated one-way distance to the original source; hearing
      another request for the same data suppresses its own and backs
      off (doubling the interval) until the repair arrives;
    - any member holding the data that hears a request schedules a
      {e repair} multicast after a uniform delay in
      [\[r1·d', (r1+r2)·d'\]] ([d'] = distance to the requester);
      hearing the repair suppresses duplicates;
    - members buffer everything for the whole session (SRM relies on
      application-level framing to regenerate data; for buffering
      comparisons this is the [Buffer_all] upper bound).

    Requests and repairs are session-wide multicasts, which is exactly
    the traffic-scaling contrast with RRMP's unicast probes and
    region-scoped repairs. *)

type t

val create :
  ?seed:int ->
  ?latency:Latency.t ->
  ?loss:Loss.model ->
  ?c1:float ->
  ?c2:float ->
  ?r1:float ->
  ?r2:float ->
  ?session_interval:float ->
  topology:Topology.t ->
  unit ->
  t
(** Timer constants default to the classic [c1 = r1 = 1], [c2 = r2 = 1]
    slotting. Distances are estimated from the latency model and the
    region hops between the nodes. *)

val sim : t -> Engine.Sim.t

val multicast : t -> ?size:int -> unit -> Protocol.Msg_id.t

val multicast_reaching :
  t -> ?size:int -> reach:(Node_id.t -> bool) -> unit -> Protocol.Msg_id.t

val run : ?until:float -> ?max_events:int -> t -> unit

val count_received : t -> Protocol.Msg_id.t -> int

val received_by_all : t -> Protocol.Msg_id.t -> bool

val members : t -> Node_id.t list

val buffer_of : t -> Node_id.t -> Rrmp.Buffer.t

val request_multicasts : t -> int
(** Request (NACK) packets put on the wire — one per receiver per
    request multicast, matching the network's per-class accounting. *)

val repair_multicasts : t -> int
(** Repair packets put on the wire, counted the same way. *)

val mean_recovery_latency : t -> float
(** Mean over all losses repaired so far (0 when none). *)
