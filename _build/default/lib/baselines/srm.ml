module Msg_id = Protocol.Msg_id
module Recv_log = Protocol.Recv_log
module Network = Netsim.Network
module Sim = Engine.Sim
module Buffer = Rrmp.Buffer
module Payload = Rrmp.Payload

type wire =
  | Data of Payload.t
  | Session of { max_seq : int }
  | Request of Msg_id.t  (* session-wide NACK multicast *)
  | Repair of Payload.t  (* session-wide repair multicast *)

let cls = function
  | Data _ -> "data"
  | Session _ -> "session"
  | Request _ -> "srm-request"
  | Repair _ -> "srm-repair"

type request_state = {
  mutable request_timer : Sim.handle option;
  mutable interval : float;  (* backoff-doubled slot width *)
  detected_at : float;
}

type member = {
  node : Node_id.t;
  recv : Recv_log.t;
  buffer : Buffer.t;
  rng : Engine.Rng.t;
  requests : request_state Msg_id.Table.t;  (* losses being chased *)
  repairs : Sim.handle Msg_id.Table.t;  (* repair multicasts scheduled *)
}

type t = {
  sim : Sim.t;
  net : wire Network.t;
  topology : Topology.t;
  latency : Latency.t;
  c1 : float;
  c2 : float;
  r1 : float;
  r2 : float;
  members : member Node_id.Table.t;
  sender : Node_id.t;
  mutable next_seq : int;
  mutable session_ticker : Engine.Timer.Periodic.t option;
  session_interval : float option;
  latencies : Stats.Summary.t;  (* recovery latencies, group-wide *)
}

let sim t = t.sim

let member_of t node = Node_id.Table.find t.members node

(* estimated one-way distance between two nodes from the latency model *)
let distance t a b =
  match (Topology.region_of t.topology a, Topology.region_of t.topology b) with
  | Some ra, Some rb ->
    let hops = Topology.hops t.topology ra rb in
    if hops = 0 then Latency.intra_rtt t.latency /. 2.0
    else Latency.inter_rtt t.latency ~hops /. 2.0
  | _ -> Latency.intra_rtt t.latency /. 2.0

let multicast_wire t ~src msg =
  Network.ip_multicast_lossy t.net ~cls:(cls msg) ~src msg

(* --- request path --------------------------------------------------- *)

(* schedule (or re-schedule after suppression/backoff) the request
   multicast for a missing message *)
let rec arm_request t m id state =
  let d = distance t m.node (Msg_id.source id) in
  let delay = (t.c1 *. d) +. Engine.Rng.float m.rng (t.c2 *. d *. state.interval) in
  let delay = Float.max delay 0.1 in
  state.request_timer <-
    Some
      (Sim.schedule t.sim ~delay (fun () ->
           state.request_timer <- None;
           multicast_wire t ~src:m.node (Request id);
           (* keep chasing with doubled slots until the repair lands *)
           state.interval <- state.interval *. 2.0;
           arm_request t m id state))

let start_request t m id =
  if not (Msg_id.Table.mem m.requests id) then begin
    let state =
      { request_timer = None; interval = 1.0; detected_at = Sim.now t.sim }
    in
    Msg_id.Table.add m.requests id state;
    arm_request t m id state
  end

(* hearing someone else's request for data we also miss: suppress our
   pending request and back off (classic SRM suppression) *)
let suppress_request t m id =
  match Msg_id.Table.find_opt m.requests id with
  | None -> ()
  | Some state ->
    (match state.request_timer with
     | Some handle ->
       Sim.cancel handle;
       state.request_timer <- None
     | None -> ());
    state.interval <- state.interval *. 2.0;
    arm_request t m id state

(* --- repair path ---------------------------------------------------- *)

let schedule_repair t m ~requester payload =
  let id = Payload.id payload in
  if not (Msg_id.Table.mem m.repairs id) then begin
    let d = distance t m.node requester in
    let delay = (t.r1 *. d) +. Engine.Rng.float m.rng (t.r2 *. d) in
    let delay = Float.max delay 0.1 in
    let handle =
      Sim.schedule t.sim ~delay (fun () ->
          Msg_id.Table.remove m.repairs id;
          multicast_wire t ~src:m.node (Repair payload))
    in
    Msg_id.Table.add m.repairs id handle
  end

let suppress_repair m id =
  match Msg_id.Table.find_opt m.repairs id with
  | None -> ()
  | Some handle ->
    Sim.cancel handle;
    Msg_id.Table.remove m.repairs id

(* --- receiving ------------------------------------------------------ *)

let obtain t m payload =
  let id = Payload.id payload in
  (match Msg_id.Table.find_opt m.requests id with
   | Some state ->
     Option.iter Sim.cancel state.request_timer;
     Msg_id.Table.remove m.requests id;
     Stats.Summary.add t.latencies (Sim.now t.sim -. state.detected_at)
   | None -> ());
  (* ALF-style: everything stays available for retransmission *)
  ignore (Buffer.insert m.buffer ~phase:Buffer.Long_term payload)

let handle_data t m payload =
  match Recv_log.note_data m.recv (Payload.id payload) with
  | Recv_log.Duplicate -> ()
  | Recv_log.Fresh losses ->
    obtain t m payload;
    List.iter (start_request t m) losses

let handle_session t m ~source ~max_seq =
  List.iter (start_request t m) (Recv_log.note_session m.recv ~source ~max_seq)

let handle_request t m id ~src =
  if Node_id.equal src m.node then ()
  else begin
    match Buffer.find m.buffer id with
    | Some payload -> schedule_repair t m ~requester:src payload
    | None ->
      (* we miss it too: the request both reveals the message's
         existence and suppresses our own pending request *)
      List.iter (start_request t m)
        (Recv_log.note_session m.recv ~source:(Msg_id.source id) ~max_seq:(Msg_id.seq id));
      suppress_request t m id
  end

let handle_repair t m payload =
  let id = Payload.id payload in
  suppress_repair m id;
  if Recv_log.note_repaired m.recv id then obtain t m payload

let handle_delivery t m (delivery : wire Network.delivery) =
  let src = delivery.Network.src in
  match delivery.Network.msg with
  | Data payload -> handle_data t m payload
  | Session { max_seq } -> handle_session t m ~source:src ~max_seq
  | Request id -> handle_request t m id ~src
  | Repair payload -> handle_repair t m payload

(* --- construction and sending --------------------------------------- *)

let create ?(seed = 1) ?(latency = Latency.paper_default) ?(loss = Loss.Lossless)
    ?(c1 = 1.0) ?(c2 = 1.0) ?(r1 = 1.0) ?(r2 = 1.0) ?session_interval ~topology () =
  let sim = Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loss = Loss.create loss ~rng:(Engine.Rng.split rng) in
  let net = Network.create ~sim ~topology ~latency ~loss ~rng:(Engine.Rng.split rng) () in
  let nodes = Topology.all_nodes topology in
  if Array.length nodes = 0 then invalid_arg "Srm.create: empty topology";
  let t =
    {
      sim;
      net;
      topology;
      latency;
      c1;
      c2;
      r1;
      r2;
      members = Node_id.Table.create (Array.length nodes);
      sender = nodes.(0);
      next_seq = 0;
      session_ticker = None;
      session_interval;
      latencies = Stats.Summary.create ();
    }
  in
  Array.iter
    (fun node ->
      let m =
        {
          node;
          recv = Recv_log.create ();
          buffer = Buffer.create ~sim;
          rng = Engine.Rng.split rng;
          requests = Msg_id.Table.create 8;
          repairs = Msg_id.Table.create 8;
        }
      in
      Node_id.Table.add t.members node m;
      Network.register net node (handle_delivery t m))
    nodes;
  t

let send_session t =
  if t.next_seq > 0 then
    multicast_wire t ~src:t.sender (Session { max_seq = t.next_seq - 1 })

let ensure_session_ticker t =
  match (t.session_ticker, t.session_interval) with
  | Some _, _ | None, None -> ()
  | None, Some interval ->
    t.session_ticker <-
      Some (Engine.Timer.Periodic.create t.sim ~interval (fun () -> send_session t))

let fresh_payload t ~size =
  let id = Msg_id.make ~source:t.sender ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  ensure_session_ticker t;
  Payload.make ?size id

let own_bookkeeping t payload =
  let m = member_of t t.sender in
  ignore (Recv_log.note_data m.recv (Payload.id payload));
  obtain t m payload

let multicast t ?size () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast_lossy t.net ~cls:"data" ~src:t.sender (Data payload);
  Payload.id payload

let multicast_reaching t ?size ~reach () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast t.net ~cls:"data" ~src:t.sender ~reach (Data payload);
  Payload.id payload

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let members t = Array.to_list (Topology.all_nodes t.topology)

let count_received t id =
  List.fold_left
    (fun acc node -> if Recv_log.received (member_of t node).recv id then acc + 1 else acc)
    0 (members t)

let received_by_all t id = count_received t id = Topology.node_count t.topology

let buffer_of t node = (member_of t node).buffer

let request_multicasts t = (Network.stats t.net ~cls:"srm-request").Network.sent

let repair_multicasts t = (Network.stats t.net ~cls:"srm-repair").Network.sent

let mean_recovery_latency t = Stats.Summary.mean t.latencies
