lib/baselines/tree_rmtp.ml: Array Engine Latency List Loss Netsim Node_id Option Protocol Rrmp Topology
