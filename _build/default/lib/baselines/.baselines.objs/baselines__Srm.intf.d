lib/baselines/srm.mli: Engine Latency Loss Node_id Protocol Rrmp Topology
