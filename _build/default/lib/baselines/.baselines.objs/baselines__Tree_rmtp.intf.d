lib/baselines/tree_rmtp.mli: Engine Latency Loss Netsim Node_id Protocol Region_id Rrmp Topology
