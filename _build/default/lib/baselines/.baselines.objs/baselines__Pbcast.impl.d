lib/baselines/pbcast.ml: Array Engine Fun Latency List Loss Netsim Node_id Protocol Rrmp Seq Topology
