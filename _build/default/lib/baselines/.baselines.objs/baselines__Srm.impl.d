lib/baselines/srm.ml: Array Engine Float Latency List Loss Netsim Node_id Option Protocol Rrmp Stats Topology
