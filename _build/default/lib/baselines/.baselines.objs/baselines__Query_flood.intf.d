lib/baselines/query_flood.mli: Latency
