lib/baselines/pbcast.mli: Engine Latency Loss Node_id Protocol Rrmp Topology
