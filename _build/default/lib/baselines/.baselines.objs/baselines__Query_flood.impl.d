lib/baselines/query_flood.ml: Array Engine Float Latency Loss Netsim Node_id Region_id Topology
