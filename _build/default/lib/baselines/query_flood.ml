module Network = Netsim.Network
module Sim = Engine.Sim

type outcome = { replies : int; first_reply_at : float }

type wire = Query | Reply

type state = {
  is_bufferer : bool;
  mutable reply_handle : Sim.handle option;
  mutable heard_reply : bool;
}

let run_once ~region ~bufferers ~backoff_window ?(latency = Latency.paper_default) ~seed () =
  if bufferers <= 0 || bufferers > region then
    invalid_arg "Query_flood.run_once: bufferers out of range";
  let topology = Topology.single_region ~size:region in
  let sim = Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loss = Loss.create Loss.Lossless ~rng:(Engine.Rng.split rng) in
  let net = Network.create ~sim ~topology ~latency ~loss ~rng:(Engine.Rng.split rng) () in
  let nodes = Topology.members topology (Region_id.of_int 0) in
  let chosen = Engine.Rng.sample_without_replacement rng bufferers nodes in
  let replies = ref 0 in
  let first_reply_at = ref Float.infinity in
  let states = Node_id.Table.create region in
  let region0 = Region_id.of_int 0 in
  Array.iter
    (fun node ->
      let state =
        {
          is_bufferer = Array.exists (Node_id.equal node) chosen;
          reply_handle = None;
          heard_reply = false;
        }
      in
      Node_id.Table.add states node state;
      Network.register net node (fun delivery ->
          match delivery.Network.msg with
          | Query ->
            (* a bufferer arms its randomized back-off on seeing the query *)
            if state.is_bufferer && not state.heard_reply && state.reply_handle = None
            then begin
              let delay = Engine.Rng.float rng backoff_window in
              state.reply_handle <-
                Some
                  (Sim.schedule sim ~delay (fun () ->
                       state.reply_handle <- None;
                       if not state.heard_reply then begin
                         incr replies;
                         first_reply_at := Float.min !first_reply_at (Sim.now sim);
                         Network.regional_multicast net ~cls:"reply" ~src:node
                           ~region:region0 Reply
                       end))
            end
          | Reply ->
            state.heard_reply <- true;
            (match state.reply_handle with
             | Some handle ->
               Sim.cancel handle;
               state.reply_handle <- None
             | None -> ())))
    nodes;
  (* the query arrives from outside the region at a random member, which
     multicasts it regionally (including to itself logically: it sees
     the query too) *)
  let entry = Engine.Rng.pick rng nodes in
  Network.regional_multicast net ~cls:"query" ~src:entry ~region:region0 ~include_src:true
    Query;
  Sim.run sim;
  { replies = !replies; first_reply_at = !first_reply_at }
