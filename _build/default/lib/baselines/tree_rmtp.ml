module Msg_id = Protocol.Msg_id
module Recv_log = Protocol.Recv_log
module Network = Netsim.Network
module Sim = Engine.Sim
module Buffer = Rrmp.Buffer
module Payload = Rrmp.Payload

type wire =
  | Data of Payload.t
  | Session of { max_seq : int }
  | Nack of Msg_id.t
  | Repair of Payload.t

let cls = function
  | Data _ -> "data"
  | Session _ -> "session"
  | Nack _ -> "nack"
  | Repair _ -> "repair"

type pending = { mutable timer : Sim.handle option; mutable tries : int }

type member = {
  node : Node_id.t;
  server : Node_id.t;  (* this member's repair server (itself if server) *)
  upstream : Node_id.t option;  (* the server's parent-region server *)
  recv : Recv_log.t;
  buffer : Buffer.t;
  pending : pending Msg_id.Table.t;  (* outstanding NACKs *)
  waiting : Node_id.t list ref Msg_id.Table.t;  (* server: requesters to relay to *)
}

type t = {
  sim : Sim.t;
  net : wire Network.t;
  topology : Topology.t;
  nack_timeout : float;
  members : member Node_id.Table.t;
  sender : Node_id.t;
  mutable next_seq : int;
  mutable session_ticker : Engine.Timer.Periodic.t option;
  session_interval : float option;
}

let net t = t.net

let sim t = t.sim

let repair_server t region =
  let members = Topology.members t.topology region in
  if Array.length members = 0 then invalid_arg "Tree_rmtp.repair_server: empty region";
  members.(0)

let is_server t node =
  match Topology.region_of t.topology node with
  | None -> false
  | Some region -> Node_id.equal (repair_server t region) node

let member_of t node = Node_id.Table.find t.members node

let send t ~src ~dst msg = Network.unicast t.net ~cls:(cls msg) ~src ~dst msg

(* NACK the member's repair server (or, for a server, its upstream
   server), retrying on a timer until the repair lands *)
let rec nack_round t m id =
  let target = if Node_id.equal m.node m.server then m.upstream else Some m.server in
  match target with
  | None -> ()  (* the root server missing a message cannot recover *)
  | Some server ->
    let p =
      match Msg_id.Table.find_opt m.pending id with
      | Some p -> p
      | None ->
        let p = { timer = None; tries = 0 } in
        Msg_id.Table.add m.pending id p;
        p
    in
    p.tries <- p.tries + 1;
    send t ~src:m.node ~dst:server (Nack id);
    p.timer <- Some (Sim.schedule t.sim ~delay:t.nack_timeout (fun () -> nack_round t m id))

let cancel_nack m id =
  match Msg_id.Table.find_opt m.pending id with
  | None -> ()
  | Some p ->
    Option.iter Sim.cancel p.timer;
    Msg_id.Table.remove m.pending id

let start_recovery t m id = if not (Msg_id.Table.mem m.pending id) then nack_round t m id

(* a server relays a just-obtained message to the receivers (and
   downstream servers) recorded as waiting for it *)
let serve_waiters t m payload =
  let id = Payload.id payload in
  match Msg_id.Table.find_opt m.waiting id with
  | None -> ()
  | Some requesters ->
    List.iter (fun dst -> send t ~src:m.node ~dst (Repair payload)) !requesters;
    Msg_id.Table.remove m.waiting id

let obtain t m payload =
  let id = Payload.id payload in
  cancel_nack m id;
  (* only the repair server buffers — for the whole session *)
  if Node_id.equal m.node m.server then
    ignore (Buffer.insert m.buffer ~phase:Buffer.Long_term payload);
  serve_waiters t m payload

let handle_data t m payload =
  match Recv_log.note_data m.recv (Payload.id payload) with
  | Recv_log.Duplicate -> ()
  | Recv_log.Fresh losses ->
    obtain t m payload;
    List.iter (start_recovery t m) losses

let handle_session t m ~source ~max_seq =
  List.iter (start_recovery t m) (Recv_log.note_session m.recv ~source ~max_seq)

let handle_nack t m id ~src =
  match Buffer.find m.buffer id with
  | Some payload -> send t ~src:m.node ~dst:src (Repair payload)
  | None ->
    (* record the requester; make sure the server itself is chasing it *)
    let requesters =
      match Msg_id.Table.find_opt m.waiting id with
      | Some r -> r
      | None ->
        let r = ref [] in
        Msg_id.Table.add m.waiting id r;
        r
    in
    if not (List.exists (Node_id.equal src) !requesters) then requesters := src :: !requesters;
    if Recv_log.received m.recv id then
      (* a non-buffering path is impossible: servers buffer everything
         they receive — but a plain member NACKed by mistake would land
         here; serve from the log is impossible, so just wait *)
      ()
    else begin
      List.iter (start_recovery t m) (Recv_log.note_session m.recv ~source:(Msg_id.source id) ~max_seq:(Msg_id.seq id))
    end

let handle_repair t m payload =
  if Recv_log.note_repaired m.recv (Payload.id payload) then obtain t m payload
  else serve_waiters t m payload

let handle_delivery t m (delivery : wire Network.delivery) =
  let src = delivery.Network.src in
  match delivery.Network.msg with
  | Data payload -> handle_data t m payload
  | Session { max_seq } -> handle_session t m ~source:src ~max_seq
  | Nack id -> handle_nack t m id ~src
  | Repair payload -> handle_repair t m payload

let wire_bytes = function
  | Data p | Repair p -> 32 + Payload.size p
  | Session _ | Nack _ -> 64

let create ?(seed = 1) ?(latency = Latency.paper_default) ?(loss = Loss.Lossless)
    ?bandwidth ?nack_timeout ?session_interval ~topology () =
  let sim = Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loss = Loss.create loss ~rng:(Engine.Rng.split rng) in
  let bandwidth =
    Option.map
      (fun bytes_per_ms -> { Network.bytes_per_ms; Network.packet_bytes = wire_bytes })
      bandwidth
  in
  let net =
    Network.create ~sim ~topology ~latency ~loss ~rng:(Engine.Rng.split rng) ?bandwidth ()
  in
  let nodes = Topology.all_nodes topology in
  if Array.length nodes = 0 then invalid_arg "Tree_rmtp.create: empty topology";
  let nack_timeout =
    match nack_timeout with Some v -> v | None -> Latency.intra_rtt latency
  in
  let t =
    {
      sim;
      net;
      topology;
      nack_timeout;
      members = Node_id.Table.create (Array.length nodes);
      sender = nodes.(0);
      next_seq = 0;
      session_ticker = None;
      session_interval;
    }
  in
  Array.iter
    (fun node ->
      let region = Option.get (Topology.region_of topology node) in
      let server = (Topology.members topology region).(0) in
      let upstream =
        match Topology.parent topology region with
        | None -> None
        | Some parent -> Some (Topology.members topology parent).(0)
      in
      let m =
        {
          node;
          server;
          upstream;
          recv = Recv_log.create ();
          buffer = Buffer.create ~sim;
          pending = Msg_id.Table.create 8;
          waiting = Msg_id.Table.create 8;
        }
      in
      Node_id.Table.add t.members node m;
      Network.register net node (handle_delivery t m))
    nodes;
  t

let send_session t =
  if t.next_seq > 0 then
    Network.ip_multicast_lossy t.net ~cls:"session" ~src:t.sender
      (Session { max_seq = t.next_seq - 1 })

let ensure_session_ticker t =
  match (t.session_ticker, t.session_interval) with
  | Some _, _ | None, None -> ()
  | None, Some interval ->
    t.session_ticker <-
      Some (Engine.Timer.Periodic.create t.sim ~interval (fun () -> send_session t))

let fresh_payload t ~size =
  let id = Msg_id.make ~source:t.sender ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  ensure_session_ticker t;
  Payload.make ?size id

let own_bookkeeping t payload =
  let m = member_of t t.sender in
  ignore (Recv_log.note_data m.recv (Payload.id payload));
  obtain t m payload

let multicast t ?size () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast_lossy t.net ~cls:"data" ~src:t.sender (Data payload);
  Payload.id payload

let multicast_reaching t ?size ~reach () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast t.net ~cls:"data" ~src:t.sender ~reach (Data payload);
  Payload.id payload

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let members t =
  Array.to_list (Topology.all_nodes t.topology)

let count_received t id =
  List.fold_left
    (fun acc node ->
      if Recv_log.received (member_of t node).recv id then acc + 1 else acc)
    0 (members t)

let received_by_all t id = count_received t id = Topology.node_count t.topology

let buffer_of t node = (member_of t node).buffer
