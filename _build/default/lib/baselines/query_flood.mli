(** The bufferer-location alternative the paper rejects in Section 3.3:
    multicast the request in the region and have bufferers answer after
    a randomized back-off, suppressing their reply when another copy is
    heard first.

    The paper observed that sizing the back-off window by [C] leads to
    reply storms whenever a message is still buffered at many more
    members than [C] (it has gone idle at some but not all members).
    This module simulates exactly that mechanism so the ablation
    experiment can count duplicate replies and compare against the
    random search. *)

type outcome = {
  replies : int;  (** regional reply multicasts actually sent *)
  first_reply_at : float;
      (** ms from the query multicast to the first reply multicast
          (latency of locating a bufferer) *)
}

val run_once :
  region:int ->
  bufferers:int ->
  backoff_window:float ->
  ?latency:Latency.t ->
  seed:int ->
  unit ->
  outcome
(** One region of [region] members of which [bufferers] hold the
    message; a query is multicast at t = 0; each bufferer schedules its
    reply uniformly in [\[0, backoff_window)] and suppresses it if a
    reply from someone else arrives first.
    @raise Invalid_argument if [bufferers] is 0 or exceeds [region]. *)
