(** A scoped Bimodal-Multicast-style protocol (Birman et al., TOCS
    1999) — the anti-entropy ancestor RRMP grew out of, with the simple
    buffering policy the paper explicitly improves on ("the Bimodal
    Multicast protocol uses a simple buffering policy in which each
    member buffers messages for a fixed amount of time").

    Mechanics implemented:
    - best-effort data multicast;
    - every [gossip_interval], each member sends a digest of its
      reception history to [fanout] uniformly random members;
    - a member receiving a digest solicits (pulls) the messages the
      gossiper has that it lacks; the gossiper retransmits those still
      in its buffer;
    - every member buffers every message for a {e fixed} [buffer_for]
      ms, then discards. *)

type t

val create :
  ?seed:int ->
  ?latency:Latency.t ->
  ?loss:Loss.model ->
  ?gossip_interval:float ->
  ?fanout:int ->
  ?buffer_for:float ->
  topology:Topology.t ->
  unit ->
  t
(** Defaults: gossip every 10 ms to 1 random member, buffer for
    200 ms. *)

val sim : t -> Engine.Sim.t

val multicast : t -> ?size:int -> unit -> Protocol.Msg_id.t

val multicast_reaching :
  t -> ?size:int -> reach:(Node_id.t -> bool) -> unit -> Protocol.Msg_id.t

val run : ?until:float -> ?max_events:int -> t -> unit

val stop_gossip : t -> unit
(** Stop every member's gossip ticker (lets the simulation quiesce). *)

val count_received : t -> Protocol.Msg_id.t -> int

val received_by_all : t -> Protocol.Msg_id.t -> bool

val members : t -> Node_id.t list

val buffer_of : t -> Node_id.t -> Rrmp.Buffer.t

val control_packets : t -> int
(** Digest + solicit + retransmit packets sent so far. *)
