lib/netsim/network.ml: Array Engine Float Hashtbl Latency List Loss Node_id String Topology
