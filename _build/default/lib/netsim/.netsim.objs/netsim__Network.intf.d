lib/netsim/network.mli: Engine Latency Loss Node_id Region_id Topology
