lib/stats/hist.mli: Format
