lib/stats/series.mli:
