lib/stats/hist.ml: Array Float Format Stdlib
