lib/stats/dist.ml: Array Float Lazy
