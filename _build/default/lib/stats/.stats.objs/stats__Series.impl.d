lib/stats/series.ml: Array Float Int List Printf
