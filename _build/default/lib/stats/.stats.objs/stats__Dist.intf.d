lib/stats/dist.mli:
