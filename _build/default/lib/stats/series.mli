(** Time series of (time, value) points, for figures plotted against
    simulated time (e.g. paper Figure 7). *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val record : t -> time:float -> float -> unit
(** Points may arrive out of order; they are sorted on read. *)

val length : t -> int

val points : t -> (float * float) array
(** Sorted by time (stable for equal times). *)

val value_at : t -> float -> float option
(** Step interpolation: the value of the latest point at or before the
    given time; [None] before the first point or when empty. *)

val sample : t -> times:float array -> (float * float) array
(** Step-interpolated resampling at the given times; points before the
    first record get the first recorded value. Empty series yields an
    empty array. *)

val map_values : (float -> float) -> t -> t

val to_csv_rows : t -> string list
(** ["time,value"]-shaped rows, no header. *)
