type t = {
  lo : float;
  hi : float;
  width : float;
  weights : float array;
  mutable n : int;
  mutable underflow : float;
  mutable overflow : float;
  mutable total : float;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Hist.create: hi must exceed lo";
  if bins <= 0 then invalid_arg "Hist.create: bins must be positive";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    weights = Array.make bins 0.0;
    n = 0;
    underflow = 0.0;
    overflow = 0.0;
    total = 0.0;
  }

let add ?(weight = 1.0) t x =
  t.n <- t.n + 1;
  t.total <- t.total +. weight;
  if x < t.lo then t.underflow <- t.underflow +. weight
  else if x >= t.hi then t.overflow <- t.overflow +. weight
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = Stdlib.min i (Array.length t.weights - 1) in
    t.weights.(i) <- t.weights.(i) +. weight
  end

let count t = t.n

let bin_count t = Array.length t.weights

let bin_range t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let bin_weight t i = t.weights.(i)

let underflow t = t.underflow

let overflow t = t.overflow

let total_weight t = t.total

let normalized t =
  if t.total = 0.0 then Array.make (bin_count t) 0.0
  else Array.map (fun w -> w /. t.total) t.weights

let mode_bin t =
  let best = ref (-1) and best_w = ref 0.0 in
  Array.iteri
    (fun i w ->
      if w > !best_w then begin
        best := i;
        best_w := w
      end)
    t.weights;
  if !best < 0 then None else Some !best

let pp fmt t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let peak = Array.fold_left Float.max 0.0 t.weights in
  Format.fprintf fmt "[";
  Array.iter
    (fun w ->
      let level =
        if peak = 0.0 then 0
        else Stdlib.min 7 (int_of_float (w /. peak *. 7.99))
      in
      Format.pp_print_char fmt glyphs.(level))
    t.weights;
  Format.fprintf fmt "] n=%d" t.n
