(** Discrete probability distributions used by the paper's analysis.

    Figure 3 plots the Poisson(C) pmf (the large-n limit of
    Binomial(n, C/n)); Figure 4 plots the probability of zero long-term
    bufferers, e^-C. We implement both exactly (via log-gamma) so the
    analytical figures are regenerated from first principles and can be
    cross-checked against Monte-Carlo simulation. *)

val log_gamma : float -> float
(** Lanczos approximation of ln Γ(x), accurate to ~1e-13 for x > 0.
    @raise Invalid_argument if [x <= 0]. *)

val log_factorial : int -> float
(** ln(n!), memoized for small n. @raise Invalid_argument if [n < 0]. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] is P(X = k) for X ~ Binomial(n, p); 0 when
    [k] is out of range. @raise Invalid_argument unless
    [0 <= p <= 1] and [n >= 0]. *)

val binomial_cdf : n:int -> p:float -> int -> float
(** P(X <= k). *)

val poisson_pmf : lambda:float -> int -> float
(** [poisson_pmf ~lambda k] is e^-λ λ^k / k!; 0 for negative [k].
    @raise Invalid_argument if [lambda < 0]. *)

val poisson_cdf : lambda:float -> int -> float

val prob_no_bufferer : c:float -> float
(** Paper, Section 3.2 / Figure 4: the probability that no member
    long-term-buffers an idle message, e^-C in the Poisson limit. *)

val prob_no_request : n:int -> p:float -> float
(** Paper, Section 3.1: probability that a member receives no local
    retransmission request when a fraction [p] of an [n]-member region
    missed the message: [(1 - 1/(n-1))^(n*p)].
    @raise Invalid_argument if [n < 2]. *)

val expected_requests_per_member : n:int -> missing:int -> float
(** With [missing] members each probing one uniform neighbour per
    round, the expected number of requests a holder sees per round. *)
