(** Fixed-width-bin histograms for distribution plots. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Bins partition [\[lo, hi)]; samples outside are counted in
    underflow/overflow. @raise Invalid_argument if [hi <= lo] or
    [bins <= 0]. *)

val add : ?weight:float -> t -> float -> unit

val count : t -> int
(** Number of [add] calls (unweighted). *)

val bin_count : t -> int

val bin_range : t -> int -> float * float
(** [\[lo, hi)] of bin [i]. *)

val bin_weight : t -> int -> float

val underflow : t -> float

val overflow : t -> float

val total_weight : t -> float

val normalized : t -> float array
(** Bin weights divided by total weight (empty histogram yields
    zeros). *)

val mode_bin : t -> int option
(** Index of the heaviest bin, if any sample landed in range. *)

val pp : Format.formatter -> t -> unit
(** Compact ASCII sparkline of bin weights. *)
