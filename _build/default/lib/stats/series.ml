type t = {
  name : string;
  mutable rev_points : (float * float) list;
  mutable sorted : (float * float) array option;
}

let create ?(name = "series") () = { name; rev_points = []; sorted = None }

let name t = t.name

let record t ~time value =
  t.rev_points <- (time, value) :: t.rev_points;
  t.sorted <- None

let length t = List.length t.rev_points

let points t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list (List.rev t.rev_points) in
    (* stable sort keeps insertion order among equal times *)
    let indexed = Array.mapi (fun i p -> (i, p)) arr in
    Array.sort
      (fun (i, (ta, _)) (j, (tb, _)) ->
        let c = Float.compare ta tb in
        if c <> 0 then c else Int.compare i j)
      indexed;
    let sorted = Array.map snd indexed in
    t.sorted <- Some sorted;
    sorted

let value_at t time =
  let arr = points t in
  let n = Array.length arr in
  if n = 0 || fst arr.(0) > time then None
  else begin
    (* binary search for the last index with time <= query *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst arr.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some (snd arr.(!lo))
  end

let sample t ~times =
  let arr = points t in
  if Array.length arr = 0 then [||]
  else
    let first_value = snd arr.(0) in
    Array.map
      (fun time ->
        match value_at t time with
        | Some v -> (time, v)
        | None -> (time, first_value))
      times

let map_values f t =
  let out = create ~name:t.name () in
  Array.iter (fun (time, v) -> record out ~time (f v)) (points t);
  out

let to_csv_rows t =
  points t |> Array.to_list
  |> List.map (fun (time, v) -> Printf.sprintf "%.6f,%.6f" time v)
