lib/membership/churn.ml: Array Engine List Node_id Region_id Seq Topology
