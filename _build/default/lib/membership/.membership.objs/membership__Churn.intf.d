lib/membership/churn.mli: Engine Node_id Topology
