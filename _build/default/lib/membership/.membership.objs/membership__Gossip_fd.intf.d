lib/membership/gossip_fd.mli: Engine Node_id
