lib/membership/gossip_fd.ml: Array Engine List Node_id Option
