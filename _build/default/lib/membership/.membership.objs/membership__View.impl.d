lib/membership/view.ml: Array Engine Node_id Region_id Topology
