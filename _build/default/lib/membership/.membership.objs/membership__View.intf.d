lib/membership/view.mli: Engine Node_id Region_id Topology
