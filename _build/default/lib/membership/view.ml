type t = {
  topology : Topology.t;
  owner : Node_id.t;
  home : Region_id.t;
  mutable local : Node_id.t array;
  mutable parent : Node_id.t array;
}

let refresh t =
  if Topology.is_member t.topology t.owner then begin
    t.local <- Topology.members_except t.topology t.home t.owner;
    t.parent <-
      (match Topology.parent t.topology t.home with
       | None -> [||]
       | Some p -> Topology.members t.topology p)
  end

let create topology ~owner =
  match Topology.region_of topology owner with
  | None -> invalid_arg "View.create: owner is not a member"
  | Some home ->
    let t = { topology; owner; home; local = [||]; parent = [||] } in
    refresh t;
    t

let owner t = t.owner

let region t = t.home

let parent_region t = Topology.parent t.topology t.home

let local_members t = t.local

let parent_members t = t.parent

let local_size t = Array.length t.local + 1

let knows t node =
  Node_id.equal node t.owner
  || Array.exists (Node_id.equal node) t.local
  || Array.exists (Node_id.equal node) t.parent

let random_in arr rng =
  if Array.length arr = 0 then None else Some (Engine.Rng.pick rng arr)

let random_local t rng = random_in t.local rng

let random_parent t rng = random_in t.parent rng

(* draw among local members minus [not_equal] without materializing the
   candidate array; one Rng.int over the candidate count, exactly like
   picking from the filtered array *)
let random_local_other t rng ~not_equal =
  let local = t.local in
  let n = Array.length local in
  let excluded = ref 0 in
  for i = 0 to n - 1 do
    if Node_id.equal local.(i) not_equal then incr excluded
  done;
  let count = n - !excluded in
  if count = 0 then None
  else begin
    let k = Engine.Rng.int rng count in
    let seen = ref 0 in
    let found = ref None in
    (try
       for i = 0 to n - 1 do
         if not (Node_id.equal local.(i) not_equal) then begin
           if !seen = k then begin
             found := Some local.(i);
             raise_notrace Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    !found
  end
