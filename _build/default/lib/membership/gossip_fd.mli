(** Gossip-style failure detection (van Renesse, Minsky & Hayden,
    Middleware 1998) — the failure-detection substrate RRMP builds on.

    Each member keeps a heartbeat counter per known member. Every
    [gossip_interval] it increments its own counter and sends its whole
    table to one random peer; receivers merge by taking the max per
    entry and remember the local time of the last increase. A member
    whose counter hasn't increased for [fail_timeout] is suspected.

    The module is transport-agnostic: the host wires [send] to its
    network and feeds inbound tables to {!on_gossip}. *)

type digest = (Node_id.t * int) list
(** A gossiped heartbeat table. *)

type t

val create :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  self:Node_id.t ->
  peers:Node_id.t array ->
  gossip_interval:float ->
  fail_timeout:float ->
  send:(dst:Node_id.t -> digest -> unit) ->
  unit ->
  t
(** Starts gossiping immediately. [peers] is the set of members this
    node may gossip to (usually its region view). *)

val self : t -> Node_id.t

val on_gossip : t -> digest -> unit
(** Merge an inbound heartbeat table. *)

val heartbeat_of : t -> Node_id.t -> int option
(** Current counter for a member; [None] if never heard of. *)

val suspects : t -> Node_id.t list
(** Members whose counter is stale by at least [fail_timeout], sorted.
    The node itself is never suspected. *)

val is_suspected : t -> Node_id.t -> bool
(** A member we have never heard from is not suspected until
    [fail_timeout] after it first appears in a digest. *)

val set_peers : t -> Node_id.t array -> unit
(** Replace the gossip target set (e.g. after a view refresh). *)

val stop : t -> unit
(** Stop gossiping (the node leaves). *)
