type digest = (Node_id.t * int) list

type entry = { mutable counter : int; mutable last_increase : float }

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  self : Node_id.t;
  mutable peers : Node_id.t array;
  fail_timeout : float;
  send : dst:Node_id.t -> digest -> unit;
  table : entry Node_id.Table.t;
  mutable ticker : Engine.Timer.Periodic.t option;
}

let entry_for t node =
  match Node_id.Table.find_opt t.table node with
  | Some e -> e
  | None ->
    let e = { counter = 0; last_increase = Engine.Sim.now t.sim } in
    Node_id.Table.add t.table node e;
    e

let digest_of t =
  Node_id.Table.fold (fun node e acc -> (node, e.counter) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)

let tick t () =
  let self_entry = entry_for t t.self in
  self_entry.counter <- self_entry.counter + 1;
  self_entry.last_increase <- Engine.Sim.now t.sim;
  if Array.length t.peers > 0 then begin
    let dst = Engine.Rng.pick t.rng t.peers in
    t.send ~dst (digest_of t)
  end

let create ~sim ~rng ~self ~peers ~gossip_interval ~fail_timeout ~send () =
  let t =
    { sim; rng; self; peers; fail_timeout; send;
      table = Node_id.Table.create 64; ticker = None }
  in
  ignore (entry_for t self);
  t.ticker <- Some (Engine.Timer.Periodic.create sim ~interval:gossip_interval (tick t));
  t

let self t = t.self

let on_gossip t digest =
  let now = Engine.Sim.now t.sim in
  List.iter
    (fun (node, counter) ->
      let e = entry_for t node in
      if counter > e.counter then begin
        e.counter <- counter;
        e.last_increase <- now
      end)
    digest

let heartbeat_of t node =
  Option.map (fun e -> e.counter) (Node_id.Table.find_opt t.table node)

let stale t e = Engine.Sim.now t.sim -. e.last_increase >= t.fail_timeout

let suspects t =
  Node_id.Table.fold
    (fun node e acc ->
      if Node_id.equal node t.self then acc
      else if stale t e then node :: acc
      else acc)
    t.table []
  |> List.sort Node_id.compare

let is_suspected t node =
  if Node_id.equal node t.self then false
  else
    match Node_id.Table.find_opt t.table node with
    | None -> false
    | Some e -> stale t e

let set_peers t peers = t.peers <- peers

let stop t =
  match t.ticker with
  | None -> ()
  | Some ticker ->
    Engine.Timer.Periodic.stop ticker;
    t.ticker <- None
