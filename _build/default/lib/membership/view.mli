(** A member's (possibly stale) knowledge of group membership.

    RRMP assumes each receiver knows the members of its own region and
    of its parent region (Section 2.1), and that this knowledge "need
    not be accurate" as long as the group doesn't partition logically.
    A [t] snapshots those two sets from the ground-truth topology; a
    view refreshed with a period models staleness: nodes that joined or
    left since the last refresh are invisible until the next one. *)

type t

val create : Topology.t -> owner:Node_id.t -> t
(** Immediately refreshed at creation.
    @raise Invalid_argument if [owner] is not currently a member. *)

val owner : t -> Node_id.t

val region : t -> Region_id.t
(** The owner's region at the last refresh. *)

val parent_region : t -> Region_id.t option

val refresh : t -> unit
(** Re-snapshot both sets from the topology. No-op (and keeps the last
    snapshot) if the owner has left. *)

val local_members : t -> Node_id.t array
(** Known members of the owner's region, never including the owner. *)

val parent_members : t -> Node_id.t array
(** Known members of the parent region; empty when there is none. *)

val local_size : t -> int
(** Known region size including the owner (the [n] of the paper's
    [P = C/n] computation). *)

val knows : t -> Node_id.t -> bool
(** Whether the node appears in either snapshot (or is the owner). *)

val random_local : t -> Engine.Rng.t -> Node_id.t option
(** Uniform pick among known local members (never the owner). *)

val random_parent : t -> Engine.Rng.t -> Node_id.t option

val random_local_other : t -> Engine.Rng.t -> not_equal:Node_id.t -> Node_id.t option
(** Uniform among local members that are neither the owner nor
    [not_equal]. *)
