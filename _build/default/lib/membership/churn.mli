(** Poisson join/leave workload driving a {!Topology.t}.

    Joins create a fresh node in a random region; leaves remove a
    random live node (never the protected sender). The host observes
    both through callbacks so it can spin protocol state up or down —
    in RRMP a voluntary leave must hand off the long-term buffer
    (Section 3.2). *)

type t

type event = Join of Node_id.t | Leave of Node_id.t

val start :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  topology:Topology.t ->
  join_rate:float ->
  leave_rate:float ->
  ?protect:Node_id.t list ->
  ?min_region_size:int ->
  on_event:(event -> unit) ->
  unit ->
  t
(** Rates are events per millisecond (exponential inter-arrival).
    A rate of 0 disables that event kind. [on_event (Leave n)] fires
    {e before} the node is removed from the topology, so the handler
    can still read its region; [on_event (Join n)] fires after
    insertion. Leaves respect [min_region_size] (default 1). *)

val stop : t -> unit

val joins : t -> int

val leaves : t -> int
