type event = Join of Node_id.t | Leave of Node_id.t

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  topology : Topology.t;
  join_rate : float;
  leave_rate : float;
  protect : Node_id.t list;
  min_region_size : int;
  on_event : event -> unit;
  mutable stopped : bool;
  mutable joins : int;
  mutable leaves : int;
}

let schedule_next t rate action =
  if rate > 0.0 then begin
    let delay = Engine.Rng.exponential t.rng ~mean:(1.0 /. rate) in
    ignore (Engine.Sim.schedule t.sim ~delay (fun () -> if not t.stopped then action ()))
  end

let do_join t =
  let r = Engine.Rng.int t.rng (Topology.region_count t.topology) in
  let node = Topology.add_node t.topology (Region_id.of_int r) in
  t.joins <- t.joins + 1;
  t.on_event (Join node)

let removable t node =
  (not (List.exists (Node_id.equal node) t.protect))
  &&
  match Topology.region_of t.topology node with
  | None -> false
  | Some r -> Topology.region_size t.topology r > t.min_region_size

let do_leave t =
  let candidates =
    Topology.all_nodes t.topology |> Array.to_seq
    |> Seq.filter (removable t)
    |> Array.of_seq
  in
  if Array.length candidates > 0 then begin
    let node = Engine.Rng.pick t.rng candidates in
    t.leaves <- t.leaves + 1;
    t.on_event (Leave node);
    Topology.remove_node t.topology node
  end

let start ~sim ~rng ~topology ~join_rate ~leave_rate ?(protect = []) ?(min_region_size = 1)
    ~on_event () =
  let t =
    {
      sim;
      rng;
      topology;
      join_rate;
      leave_rate;
      protect;
      min_region_size;
      on_event;
      stopped = false;
      joins = 0;
      leaves = 0;
    }
  in
  let rec join_loop () =
    do_join t;
    schedule_next t t.join_rate join_loop
  and leave_loop () =
    do_leave t;
    schedule_next t t.leave_rate leave_loop
  in
  schedule_next t t.join_rate join_loop;
  schedule_next t t.leave_rate leave_loop;
  t

let stop t = t.stopped <- true

let joins t = t.joins

let leaves t = t.leaves
