(** The error-recovery hierarchy of Section 2.1: receivers grouped into
    local regions; regions organized in a parent forest according to
    their distance from the sender. The sender is a member of a root
    region. Membership is mutable so experiments can model receivers
    joining and leaving a session.

    All member enumerations are returned sorted by node id, so that
    iteration order — and therefore the simulation — is deterministic. *)

type t

val create : parents:Region_id.t option array -> t
(** [create ~parents] makes a topology with [Array.length parents]
    empty regions; [parents.(i)] is region [i]'s parent region (its
    least upstream region), [None] for a root region.
    @raise Invalid_argument if a parent index is out of range, is the
    region itself, or the parent relation has a cycle. *)

val add_node : t -> Region_id.t -> Node_id.t
(** Create a fresh node inside the given region. Node ids are dense and
    never reused. *)

val remove_node : t -> Node_id.t -> unit
(** Take a node out of the session (voluntary leave or crash).
    @raise Invalid_argument if the node is not currently a member. *)

val region_count : t -> int

val node_count : t -> int
(** Live members only. *)

val created_count : t -> int
(** Total nodes ever created (the id space). *)

val region_of : t -> Node_id.t -> Region_id.t option
(** [None] when the node has been removed or never existed. *)

val is_member : t -> Node_id.t -> bool

val members : t -> Region_id.t -> Node_id.t array
(** Sorted snapshot of the region's live members. *)

val members_except : t -> Region_id.t -> Node_id.t -> Node_id.t array
(** The region's members minus one node (whether or not it's inside). *)

val region_size : t -> Region_id.t -> int

val parent : t -> Region_id.t -> Region_id.t option

val children : t -> Region_id.t -> Region_id.t list

val depth : t -> Region_id.t -> int
(** Distance to the root of the region's tree (root = 0). *)

val hops : t -> Region_id.t -> Region_id.t -> int
(** Number of region-to-region hops on the unique path through the
    hierarchy (0 for the same region).
    @raise Invalid_argument if the regions are in different trees. *)

val all_nodes : t -> Node_id.t array
(** Sorted snapshot of every live member. *)

val regions : t -> Region_id.t list

val same_region : t -> Node_id.t -> Node_id.t -> bool
(** False if either node has left. *)

(** {1 Ready-made shapes} *)

val single_region : size:int -> t
(** One region with [size] members — the paper's Section 4 setting. *)

val chain : sizes:int list -> t
(** Regions in a line: region 0 (the sender's) is the parent of region
    1, which is the parent of region 2, ... — Figure 1's shape. *)

val star : hub:int -> leaves:int list -> t
(** Region 0 with [hub] members is the parent of every leaf region. *)

val balanced_tree : fanout:int -> levels:int -> region_size:int -> t
(** Complete [fanout]-ary tree of regions with [levels] levels (a
    single root region when [levels = 1]), every region populated with
    [region_size] members. *)

val pp : Format.formatter -> t -> unit
