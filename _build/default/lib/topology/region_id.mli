(** Identity of a local region in the error-recovery hierarchy. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t
