type t = int

let of_int i =
  if i < 0 then invalid_arg "Region_id.of_int: negative id";
  i

let to_int t = t

let equal = Int.equal

let compare = Int.compare

let pp fmt t = Format.fprintf fmt "r%d" t

let to_string t = Format.asprintf "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
