type model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { median : float; sigma : float }

type t = { intra_model : model; inter_model : model }

let validate = function
  | Constant d -> if d < 0.0 then invalid_arg "Latency: negative constant delay"
  | Uniform { lo; hi } ->
    if lo < 0.0 || hi < lo then invalid_arg "Latency: bad uniform range"
  | Lognormal { median; sigma } ->
    if median <= 0.0 || sigma < 0.0 then invalid_arg "Latency: bad lognormal"

let create ~intra ~inter =
  validate intra;
  validate inter;
  { intra_model = intra; inter_model = inter }

let paper_default = create ~intra:(Constant 5.0) ~inter:(Constant 50.0)

let sample_model model rng =
  match model with
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Engine.Rng.float rng (hi -. lo)
  | Lognormal { median; sigma } ->
    Engine.Rng.lognormal rng ~mu:(log median) ~sigma

let intra t rng = sample_model t.intra_model rng

let inter t ~hops rng =
  if hops < 1 then invalid_arg "Latency.inter: hops must be >= 1";
  let acc = ref (sample_model t.intra_model rng) in
  for _ = 1 to hops do
    acc := !acc +. sample_model t.inter_model rng
  done;
  !acc

let mean_model = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Lognormal { median; sigma } -> median *. exp (sigma *. sigma /. 2.0)

let intra_rtt t = 2.0 *. mean_model t.intra_model

let inter_rtt t ~hops =
  2.0 *. (mean_model t.intra_model +. (float_of_int hops *. mean_model t.inter_model))
