(** Identity of a simulated protocol participant (one per receiver; the
    sender is also a receiver). Dense integers so components can index
    arrays by node. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Table : Hashtbl.S with type key = t
