lib/topology/latency.ml: Engine
