lib/topology/region_id.ml: Format Int Map
