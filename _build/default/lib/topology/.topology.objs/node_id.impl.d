lib/topology/node_id.ml: Format Hashtbl Int Map Set
