lib/topology/node_id.mli: Format Hashtbl Map Set
