lib/topology/loss.mli: Engine Node_id
