lib/topology/topology.ml: Array Format List Node_id Region_id
