lib/topology/region_id.mli: Format Map
