lib/topology/topology.mli: Format Node_id Region_id
