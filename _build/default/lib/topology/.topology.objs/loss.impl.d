lib/topology/loss.ml: Engine Hashtbl Node_id Printf
