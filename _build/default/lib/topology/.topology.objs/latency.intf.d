lib/topology/latency.mli: Engine
