(** One-way packet delay models.

    The paper's local-region simulation uses a constant 10 ms round
    trip (5 ms one way) between any two members of a region, with
    inter-region latency "usually much higher". A model produces a
    one-way delay per packet; intra- and inter-region delays are
    configured separately, and inter-region delay scales with the hop
    distance between regions in the hierarchy. *)

type model =
  | Constant of float  (** fixed one-way delay, ms *)
  | Uniform of { lo : float; hi : float }
      (** uniform in [\[lo, hi)], ms *)
  | Lognormal of { median : float; sigma : float }
      (** heavy-tailed WAN-like delay: exp(N(ln median, sigma)) *)

type t

val create : intra:model -> inter:model -> t
(** [inter] is the delay of one region-to-region hop; a packet crossing
    [h] hops samples the model [h] times and adds one intra sample for
    the local leg. *)

val paper_default : t
(** The evaluation setting of Section 4: constant 5 ms one-way within
    a region (10 ms RTT) and constant 50 ms per inter-region hop. *)

val sample_model : model -> Engine.Rng.t -> float
(** One draw from a bare model (always >= 0). *)

val intra : t -> Engine.Rng.t -> float
(** Delay between two members of the same region. *)

val inter : t -> hops:int -> Engine.Rng.t -> float
(** Delay between members of regions [hops] apart in the hierarchy
    ([hops >= 1]); includes a final intra-region leg. *)

val mean_model : model -> float
(** Analytic mean of a model (used to set timers from expected RTTs). *)

val intra_rtt : t -> float
(** Expected round-trip time within a region: [2 * mean intra]. *)

val inter_rtt : t -> hops:int -> float
(** Expected round-trip time across [hops] region hops. *)
