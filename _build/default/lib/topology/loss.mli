(** Packet-loss models.

    The paper assumes retransmission requests and repairs are not lost
    (Section 4); data packets are lost according to the experiment's
    workload. We additionally provide independent (Bernoulli) and
    bursty (Gilbert–Elliott) channel models so experiments can stress
    the recovery path beyond the paper's setting. Gilbert–Elliott keeps
    an independent channel state per (src, dst) pair. *)

type model =
  | Lossless
  | Bernoulli of float  (** independent loss probability per packet *)
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

type t

val create : model -> rng:Engine.Rng.t -> t

val model : t -> model

val drop : t -> src:Node_id.t -> dst:Node_id.t -> bool
(** Decide the fate of one packet on the directed link [src → dst]. *)

val expected_loss_rate : model -> float
(** Stationary loss probability of the model. *)
