type model =
  | Lossless
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

type channel_state = Good | Bad

type t = {
  model : model;
  rng : Engine.Rng.t;
  channels : (int * int, channel_state ref) Hashtbl.t;
}

let check_prob name p =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Loss: %s out of [0,1]" name)

let create model ~rng =
  (match model with
   | Lossless -> ()
   | Bernoulli p -> check_prob "loss probability" p
   | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
     check_prob "p_good_to_bad" p_good_to_bad;
     check_prob "p_bad_to_good" p_bad_to_good;
     check_prob "loss_good" loss_good;
     check_prob "loss_bad" loss_bad);
  { model; rng; channels = Hashtbl.create 64 }

let model t = t.model

let channel t ~src ~dst =
  let key = (Node_id.to_int src, Node_id.to_int dst) in
  match Hashtbl.find_opt t.channels key with
  | Some state -> state
  | None ->
    let state = ref Good in
    Hashtbl.add t.channels key state;
    state

let drop t ~src ~dst =
  match t.model with
  | Lossless -> false
  | Bernoulli p -> Engine.Rng.bernoulli t.rng ~p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    let state = channel t ~src ~dst in
    (* transition first, then sample loss in the new state *)
    (match !state with
     | Good -> if Engine.Rng.bernoulli t.rng ~p:p_good_to_bad then state := Bad
     | Bad -> if Engine.Rng.bernoulli t.rng ~p:p_bad_to_good then state := Good);
    let p = match !state with Good -> loss_good | Bad -> loss_bad in
    Engine.Rng.bernoulli t.rng ~p

let expected_loss_rate = function
  | Lossless -> 0.0
  | Bernoulli p -> p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    if p_good_to_bad = 0.0 && p_bad_to_good = 0.0 then loss_good
    else begin
      (* stationary distribution of the two-state chain *)
      let pi_bad = p_good_to_bad /. (p_good_to_bad +. p_bad_to_good) in
      (loss_bad *. pi_bad) +. (loss_good *. (1.0 -. pi_bad))
    end
