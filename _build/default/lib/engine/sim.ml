type handle = {
  at : float;
  action : unit -> unit;
  mutable state : [ `Pending | `Cancelled | `Fired ];
}

type t = {
  mutable clock : float;
  queue : handle Heap.t;
  mutable executed : int;
}

let create ?(now = 0.0) () =
  let compare_priority a b = Float.compare a.at b.at in
  { clock = now; queue = Heap.create ~compare_priority (); executed = 0 }

let now t = t.clock

let pending t = Heap.length t.queue

let schedule_at t ~at action =
  let at = Float.max at t.clock in
  let handle = { at; action; state = `Pending } in
  Heap.push t.queue handle;
  handle

let schedule t ~delay action = schedule_at t ~at:(t.clock +. Float.max delay 0.0) action

let cancel handle = if handle.state = `Pending then handle.state <- `Cancelled

let cancelled handle = handle.state = `Cancelled

let fire_time handle = handle.at

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some handle ->
    t.clock <- Float.max t.clock handle.at;
    (match handle.state with
     | `Cancelled | `Fired -> ()
     | `Pending ->
       handle.state <- `Fired;
       t.executed <- t.executed + 1;
       handle.action ());
    true

let run ?until ?max_events t =
  let budget_left () =
    match max_events with None -> true | Some m -> t.executed < m
  in
  let next_in_range () =
    match Heap.peek t.queue with
    | None -> false
    | Some handle ->
      (match until with None -> true | Some u -> handle.at <= u)
  in
  while budget_left () && next_in_range () do
    ignore (step t)
  done;
  match until with
  | Some u when Heap.is_empty t.queue || not (next_in_range ()) ->
    t.clock <- Float.max t.clock u
  | _ -> ()

let events_executed t = t.executed
