(** Hierarchical timer wheel for short-horizon events.

    Entries are bucketed by integer tick ([time / granularity]) into
    three levels of slots (256 x 1 tick, 64 x 256 ticks, 64 x 16384
    ticks — a horizon of 2^20 ticks). {!add} is O(1); entries in coarse
    slots cascade down lazily, exactly once per level, as the cursor
    crosses window boundaries.

    Despite the bucketing, {!pop} order is *exact*: each drained bucket
    is sorted once by the caller-supplied total order (normally
    (fire-time, sequence-number)), and entries landing behind the cursor
    are merge-inserted, so a wheel-backed scheduler fires events in
    precisely the same order as a heap-backed one. *)

type 'a t

val create :
  ?granularity:float ->
  ?start:float ->
  time_of:('a -> float) ->
  compare:('a -> 'a -> int) ->
  unit ->
  'a t
(** [create ~time_of ~compare ()] is an empty wheel whose cursor starts
    at [start] (default 0.0). [granularity] (default 1.0) is the tick
    width in the same unit as [time_of]. [compare] must be a total order
    consistent with [time_of] (equal times broken deterministically). *)

val granularity : 'a t -> float

val horizon : 'a t -> float
(** Entries with [time_of] at or beyond this absolute time are rejected
    by {!add}. The horizon advances as the wheel drains. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> bool
(** Insert an entry; O(1). Returns [false] (without inserting) when the
    entry lies beyond {!horizon} — the caller should fall back to its
    far-future structure. Entries behind the cursor are accepted and
    merge-inserted in order. *)

val peek : 'a t -> 'a option
(** Earliest entry (by [compare]) without removing it. Amortized O(1);
    may advance the cursor (lazy cascading). *)

val top : 'a t -> default:'a -> 'a
(** Allocation-free {!peek}: [default] when empty. *)

val pop : 'a t -> 'a option
(** Remove and return the earliest entry. *)

val drop_head : 'a t -> unit
(** Remove the entry {!top} returned (no-op if none is staged). Only
    meaningful directly after {!top}/{!peek} returned an entry. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every entry failing the predicate (used to purge cancelled
    events); O(n). *)

val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** All entries, in unspecified order (for inspection/tests). *)
