type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare_priority : 'a -> 'a -> int;
  initial_capacity : int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) ~compare_priority () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity must be positive";
  { compare_priority; initial_capacity = capacity; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* seq breaks ties so equal priorities pop in insertion order *)
let less t a b =
  let c = t.compare_priority a.value b.value in
  if c <> 0 then c < 0 else a.seq < b.seq

(* [filler] seeds the slots of a freshly allocated array; it is always
   immediately overwritten for the slot actually used *)
let ensure_room t filler =
  if t.size = Array.length t.data then begin
    let capacity = max t.initial_capacity (2 * Array.length t.data) in
    let data = Array.make capacity filler in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && less t t.data.(left) t.data.(!smallest) then smallest := left;
  if right < t.size && less t t.data.(right) t.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let entry = { value; seq = t.next_seq } in
  ensure_room t entry;
  t.data.(t.size) <- entry;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_list_unordered t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i).value :: acc) in
  collect (t.size - 1) []
