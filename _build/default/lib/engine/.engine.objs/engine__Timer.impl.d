lib/engine/timer.ml: Float Sim
