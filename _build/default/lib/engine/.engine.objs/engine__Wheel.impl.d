lib/engine/wheel.ml: Array List
