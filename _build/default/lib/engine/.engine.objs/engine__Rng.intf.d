lib/engine/rng.mli:
