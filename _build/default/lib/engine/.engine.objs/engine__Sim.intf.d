lib/engine/sim.mli:
