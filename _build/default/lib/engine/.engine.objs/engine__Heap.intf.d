lib/engine/heap.mli:
