lib/engine/heap.ml: Array List
