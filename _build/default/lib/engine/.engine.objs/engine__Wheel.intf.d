lib/engine/wheel.mli:
