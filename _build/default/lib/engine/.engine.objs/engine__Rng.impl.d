lib/engine/rng.ml: Array Float Int64 List Seq
