lib/engine/sim.ml: Float Heap Int Wheel
