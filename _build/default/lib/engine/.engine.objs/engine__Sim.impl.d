lib/engine/sim.ml: Float Heap
