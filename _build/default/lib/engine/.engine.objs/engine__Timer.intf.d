lib/engine/timer.mli: Sim
