(** Discrete-event simulation driver.

    A [t] owns a virtual clock (in milliseconds) and an event queue.
    Events scheduled for the same instant run in the order they were
    scheduled, which together with {!Rng} makes runs fully
    deterministic. Callbacks may schedule further events. *)

type t

type handle
(** A scheduled event that can be cancelled before it fires. *)

val create : ?now:float -> unit -> t
(** Fresh simulation with the clock at [now] (default 0.0 ms). *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. A negative
    delay is clamped to 0 (runs "now", after already-queued events for
    this instant). *)

val schedule_at : t -> at:float -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to
    [now t]). *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val fire_time : handle -> float
(** The virtual time at which the handle is (or was) due. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the next
    event is strictly later than [until], or after [max_events]
    callbacks have run. The clock ends at the time of the last executed
    event (or [until] if provided and larger). *)

val step : t -> bool
(** Execute the single next event. [false] if the queue was empty. *)

val events_executed : t -> int
(** Total callbacks run since creation. *)
