(** Growable binary min-heap used as the simulator's event queue.

    Elements are ordered by a caller-supplied priority; ties are broken
    by insertion order (FIFO among equal priorities), which makes event
    execution deterministic. *)

type 'a t

val create : ?capacity:int -> compare_priority:('a -> 'a -> int) -> unit -> 'a t
(** [create ~compare_priority ()] is an empty heap. [compare_priority]
    must be a total order on priorities. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; FIFO among ties. *)

val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** All elements, in unspecified order (for inspection/tests). *)
