lib/experiments/ext_implosion.ml: Baselines Engine Float List Netsim Printf Report Rrmp Stats Topology
