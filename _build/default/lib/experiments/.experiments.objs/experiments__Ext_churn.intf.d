lib/experiments/ext_churn.mli: Report
