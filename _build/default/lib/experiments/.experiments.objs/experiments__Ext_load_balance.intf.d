lib/experiments/ext_load_balance.mli: Report
