lib/experiments/ext_protocols.ml: Baselines Engine Float List Loss Netsim Printf Protocol Report Rrmp Stats String Topology
