lib/experiments/ext_overhead.ml: Engine List Netsim Printf Report Rrmp Stats Topology
