lib/experiments/ext_latency_vs_c.ml: List Node_id Printf Region_id Report Rrmp Stats Topology
