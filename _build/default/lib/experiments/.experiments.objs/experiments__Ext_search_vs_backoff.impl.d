lib/experiments/ext_search_vs_backoff.ml: Array Baselines Engine List Netsim Node_id Printf Protocol Region_id Report Rrmp Stats Topology
