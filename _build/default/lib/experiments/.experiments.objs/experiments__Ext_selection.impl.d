lib/experiments/ext_selection.ml: Array Engine List Netsim Node_id Printf Protocol Region_id Report Rrmp Seq Stats Topology
