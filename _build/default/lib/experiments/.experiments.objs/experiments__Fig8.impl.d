lib/experiments/fig8.ml: Array Engine List Netsim Node_id Printf Protocol Region_id Report Rrmp Runner Stats Topology
