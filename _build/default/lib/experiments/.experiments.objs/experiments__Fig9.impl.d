lib/experiments/fig9.ml: Fig8 Printf
