lib/experiments/fig6.ml: Array Engine List Node_id Printf Protocol Region_id Report Rrmp Runner Stats Topology
