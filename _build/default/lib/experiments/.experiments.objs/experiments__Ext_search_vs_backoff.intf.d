lib/experiments/ext_search_vs_backoff.mli: Report
