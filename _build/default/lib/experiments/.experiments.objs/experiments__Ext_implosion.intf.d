lib/experiments/ext_implosion.mli: Report
