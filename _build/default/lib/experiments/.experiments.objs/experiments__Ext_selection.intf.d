lib/experiments/ext_selection.mli: Report
