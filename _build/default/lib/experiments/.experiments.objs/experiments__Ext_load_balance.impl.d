lib/experiments/ext_load_balance.ml: Array Baselines Engine Float List Printf Report Rrmp Stats Topology
