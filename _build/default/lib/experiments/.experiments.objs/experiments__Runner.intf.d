lib/experiments/runner.mli: Stats
