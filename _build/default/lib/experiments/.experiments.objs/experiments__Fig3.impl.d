lib/experiments/fig3.ml: Array Engine List Printf Report Rrmp Stats
