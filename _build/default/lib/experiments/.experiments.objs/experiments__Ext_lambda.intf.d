lib/experiments/ext_lambda.mli: Report
