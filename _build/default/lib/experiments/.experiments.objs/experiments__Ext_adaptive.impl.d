lib/experiments/ext_adaptive.ml: Engine Latency List Netsim Node_id Printf Protocol Region_id Report Rrmp Stats Topology
