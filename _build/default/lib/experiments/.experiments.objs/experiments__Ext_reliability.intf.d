lib/experiments/ext_reliability.mli: Report
