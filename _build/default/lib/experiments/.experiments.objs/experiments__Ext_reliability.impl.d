lib/experiments/ext_reliability.ml: Engine List Node_id Option Printf Region_id Report Rrmp Stats Topology
