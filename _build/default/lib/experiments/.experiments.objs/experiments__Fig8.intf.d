lib/experiments/fig8.mli: Report
