lib/experiments/ext_lambda.ml: List Netsim Node_id Printf Region_id Report Rrmp Stats Topology
