lib/experiments/registry.mli: Report
