lib/experiments/fig9.mli: Report
