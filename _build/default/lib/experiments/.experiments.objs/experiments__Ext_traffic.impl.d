lib/experiments/ext_traffic.ml: Engine List Netsim Printf Report Rrmp Topology
