lib/experiments/ext_protocols.mli: Report
