lib/experiments/ext_model.ml: Fig8 List Printf Report Rrmp Runner Stats
