lib/experiments/fig4.mli: Report
