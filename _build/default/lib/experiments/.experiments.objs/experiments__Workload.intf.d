lib/experiments/workload.mli: Engine Node_id Topology
