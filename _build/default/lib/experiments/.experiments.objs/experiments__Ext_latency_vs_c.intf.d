lib/experiments/ext_latency_vs_c.mli: Report
