lib/experiments/fig7.ml: Array Engine Fig6 Printf Report Rrmp Stats
