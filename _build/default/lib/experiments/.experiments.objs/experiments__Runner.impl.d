lib/experiments/runner.ml: Stats
