lib/experiments/fig3.mli: Report
