lib/experiments/report.ml: Array Filename Format List Printf String Tracing
