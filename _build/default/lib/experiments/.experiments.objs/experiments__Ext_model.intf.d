lib/experiments/ext_model.mli: Report
