lib/experiments/fig6.mli: Node_id Protocol Report Rrmp
