lib/experiments/ext_traffic.mli: Report
