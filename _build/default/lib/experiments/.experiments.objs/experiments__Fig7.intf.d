lib/experiments/fig7.mli: Report
