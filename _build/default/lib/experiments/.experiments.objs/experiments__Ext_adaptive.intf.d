lib/experiments/ext_adaptive.mli: Report
