lib/experiments/ext_overhead.mli: Report
