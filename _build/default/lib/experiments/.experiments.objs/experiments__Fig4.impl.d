lib/experiments/fig4.ml: Engine List Printf Report Rrmp Stats Topology
