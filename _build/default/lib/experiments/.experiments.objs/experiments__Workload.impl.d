lib/experiments/workload.ml: Array Engine List Node_id Topology
