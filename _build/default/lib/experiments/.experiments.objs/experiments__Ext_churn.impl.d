lib/experiments/ext_churn.ml: Array Engine Printf Report Rrmp Topology
