(** Figure 8: search time as the number of long-term bufferers
    increases (Section 3.3).

    A remote request arrives at a randomly chosen member of a region
    where everyone has received and discarded the message except [k]
    long-term bufferers. The search time is measured from the arrival
    of the request to the moment a bufferer serves it (0 when the
    request lands on a bufferer directly). The paper: ~45 ms at 1
    bufferer falling to ~20 ms (2 RTT) at 10, averaged over 100 runs. *)

val run :
  ?bufferer_counts:int list ->
  ?region:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: bufferers 1..10, region 100, 100 trials per point. *)

val search_time : region:int -> bufferers:int -> seed:int -> float
(** One trial (ms). *)

val table :
  id:string ->
  title:string ->
  points:int list ->
  column:string ->
  trials:int ->
  seed:int ->
  measure:(int -> seed:int -> float) ->
  notes:string list ->
  Report.t
(** Shared sweep-and-summarize driver (also used by Figure 9). *)
