let run ?(region_sizes = [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ])
    ?(bufferers = 10) ?(trials = 100) ?(seed = 2) () =
  Fig8.table ~id:"fig9" ~title:"Search time vs region size (10 bufferers)"
    ~points:region_sizes ~column:"region size" ~trials ~seed
    ~measure:(fun region ~seed -> Fig8.search_time ~region ~bufferers ~seed)
    ~notes:
      [
        Printf.sprintf "%d long-term bufferers, RTT 10 ms, %d trials per point" bufferers
          trials;
        "expected shape: sublinear growth — ~2.2x search time for 10x region size";
      ]
