let mc_distribution ~rng ~c ~n ~trials ~max_k =
  let counts = Array.make (max_k + 1) 0 in
  for _ = 1 to trials do
    let bufferers = ref 0 in
    for _ = 1 to n do
      if Rrmp.Long_term.decide rng ~c ~n then incr bufferers
    done;
    if !bufferers <= max_k then counts.(!bufferers) <- counts.(!bufferers) + 1
  done;
  Array.map (fun count -> float_of_int count /. float_of_int trials) counts

let run ?(cs = [ 5.0; 6.0; 7.0; 8.0 ]) ?(max_k = 20) ?(region = 100) ?(mc_trials = 20_000)
    ?(seed = 1) () =
  let rng = Engine.Rng.create ~seed in
  let mc = List.map (fun c -> mc_distribution ~rng ~c ~n:region ~trials:mc_trials ~max_k) cs in
  let columns =
    "k"
    :: List.concat_map
         (fun c ->
           [ Printf.sprintf "C=%.0f poisson %%" c; Printf.sprintf "C=%.0f simulated %%" c ])
         cs
  in
  let rows =
    List.init (max_k + 1) (fun k ->
        Report.cell_i k
        :: List.concat
             (List.map2
                (fun c dist ->
                  [
                    Report.cell_pct (Stats.Dist.poisson_pmf ~lambda:c k);
                    Report.cell_pct dist.(k);
                  ])
                cs mc))
  in
  Report.make ~id:"fig3" ~title:"P(k long-term bufferers) for different C"
    ~columns
    ~notes:
      [
        Printf.sprintf
          "simulated: %d trials of a %d-member region where each member keeps an idle \
           message with probability C/n (Section 3.2)"
          mc_trials region;
        "expected shape: Poisson(C) — mode near C, heavier right shift as C grows";
      ]
    rows
