(** Extension G: why RRMP searches instead of multicasting the query
    (Section 3.3's motivating observation).

    The rejected design multicasts the request in the region; bufferers
    reply after a randomized back-off sized for the C expected
    long-term bufferers. But a message can still be buffered at many
    more members than C (idle at some, not yet at others): then the
    back-off window is far too short and replies storm. We sweep the
    actual number of bufferers B and compare the reply/probe traffic
    and location latency of both mechanisms. *)

val run :
  ?bufferer_counts:int list ->
  ?region:int ->
  ?c:float ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
