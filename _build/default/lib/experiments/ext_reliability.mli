(** Extension E: the Section 5 limitation quantified — the probability
    that a receiver detecting a loss {e after} the message went idle
    everywhere can no longer recover it, as a function of C.

    A region receives a message and idles; then one late receiver
    detects the loss. Recovery succeeds iff at least one long-term
    bufferer survived, so the violation probability should track
    e^-C. We also report the recovery latency conditional on
    success. *)

val run : ?cs:float list -> ?region:int -> ?trials:int -> ?seed:int -> unit -> Report.t
