(** Initial-multicast outcome generators.

    The paper's experiments control which receivers hold a message
    after the initial IP multicast. These helpers build the [reach]
    predicates for {!Rrmp.Group.multicast_reaching}: independent
    per-receiver loss, loss correlated by region (an upstream link
    dropping the packet for a whole subtree — the pattern that makes
    remote recovery necessary), and exact holder sets. *)

val independent : rng:Engine.Rng.t -> p_reach:float -> Node_id.t -> bool
(** Each receiver gets the packet independently with [p_reach].
    Partially applied: [independent ~rng ~p_reach] is a fresh reach
    predicate (one coin per queried receiver). *)

val regional :
  rng:Engine.Rng.t ->
  topology:Topology.t ->
  p_region_reach:float ->
  p_member_reach:float ->
  unit ->
  Node_id.t -> bool
(** Two-level loss: each region is reached with [p_region_reach]
    (sampled once per region at creation); members of reached regions
    then get the packet with [p_member_reach]; members of missed
    regions get nothing. Models an upstream-link loss hitting the
    whole subtree. *)

val holders : Node_id.t array -> Node_id.t -> bool
(** Exactly the given set is reached. *)

val sample_holders :
  rng:Engine.Rng.t -> topology:Topology.t -> count:int -> Node_id.t array
(** A uniform random holder set of the given size.
    @raise Invalid_argument if [count] exceeds the live membership. *)
