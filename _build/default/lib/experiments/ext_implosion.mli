(** Extension L: the message-implosion problem (Section 1's
    motivation for distributed error recovery).

    "Putting the responsibility of error recovery entirely on the
    sender can lead to a message implosion problem [7, 12]."

    A region-wide loss (only the sender holds the message) with a
    per-node egress bandwidth limit: under the sender/repair-server
    design, every NACK converges on one node and all repairs serialize
    on its link; under RRMP, repaired members immediately answer their
    neighbours' probes, so retransmission capacity grows with the
    epidemic. We sweep the egress bandwidth and report the time until
    everyone has the message, plus the worst egress backlog. *)

val run :
  ?bandwidths:float list ->
  ?region:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** [bandwidths] in bytes/ms (1 KiB payloads: 100 bytes/ms ≈ 10 ms
    serialization per repair). *)
