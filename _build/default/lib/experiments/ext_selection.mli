(** Extension I: randomized vs deterministic (hashed) choice of
    long-term bufferers — the comparison of Section 3.4.

    With the deterministic hash of Ozkasap et al., any member can
    compute who buffers a message and probe the bufferers directly, so
    locating one needs no random walk; the randomized choice pays
    search traffic and latency but adapts to membership changes (the
    handoff of Section 3.2). We measure the location cost of both on
    the Figure 8 rig. *)

val run : ?region:int -> ?c:float -> ?trials:int -> ?seed:int -> unit -> Report.t
