type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  List.iteri
    (fun i row ->
      if List.length row <> List.length columns then
        invalid_arg
          (Printf.sprintf "Report.make(%s): row %d has %d cells, expected %d" id i
             (List.length row) (List.length columns)))
    rows;
  { id; title; columns; rows; notes }

let cell_f v = Printf.sprintf "%.3f" v

let cell_pct v = Printf.sprintf "%.3f" (100.0 *. v)

let cell_i = string_of_int

let pp fmt t =
  let widths = Array.of_list (List.map String.length t.columns) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  Format.fprintf fmt "@[<v>== %s: %s ==@," t.id t.title;
  Format.fprintf fmt "%s@," (String.concat "  " (List.mapi pad t.columns));
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Format.fprintf fmt "%s@," rule;
  List.iter (fun row -> Format.fprintf fmt "%s@," (String.concat "  " (List.mapi pad row))) t.rows;
  List.iter (fun note -> Format.fprintf fmt "note: %s@," note) t.notes;
  Format.fprintf fmt "@]"

let to_csv t = Tracing.Csv.to_string ~header:t.columns t.rows

let save_csv ~dir t =
  let path = Filename.concat dir (t.id ^ ".csv") in
  Tracing.Csv.save ~path ~header:t.columns t.rows;
  path
