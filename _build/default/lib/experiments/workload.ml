let independent ~rng ~p_reach _node = Engine.Rng.bernoulli rng ~p:p_reach

let regional ~rng ~topology ~p_region_reach ~p_member_reach () =
  let region_reached =
    List.map
      (fun region -> (region, Engine.Rng.bernoulli rng ~p:p_region_reach))
      (Topology.regions topology)
  in
  fun node ->
    match Topology.region_of topology node with
    | None -> false
    | Some region ->
      (match List.assoc_opt region region_reached with
       | Some true -> Engine.Rng.bernoulli rng ~p:p_member_reach
       | Some false | None -> false)

let holders set node = Array.exists (Node_id.equal node) set

let sample_holders ~rng ~topology ~count =
  let nodes = Topology.all_nodes topology in
  if count > Array.length nodes then invalid_arg "Workload.sample_holders: count too large";
  Engine.Rng.sample_without_replacement rng count nodes
