(** Figure 6: effectiveness of feedback-based short-term buffering.

    A region of 100 members (10 ms RTT, idle threshold T = 40 ms); a
    random subset of [k] members holds the message initially, everyone
    else detects the loss simultaneously and starts local recovery. We
    measure how long the initial holders keep the message in their
    short-term buffer (time from holding it to the idle threshold
    firing). The paper's y-axis is log-scale, decreasing from ~105 ms
    at 1 holder to near T as the initial multicast reaches more
    members. *)

val run :
  ?holder_counts:int list ->
  ?region:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: holders ∈ {1, 2, 4, 8, 16, 32, 64} (the paper's x-axis),
    region 100, 30 trials per point. *)

val average_holder_buffering_time :
  holders:int -> region:int -> seed:int -> float
(** One trial: mean short-term buffering time (ms) over the initial
    holders. *)

val setup :
  holders:int ->
  region:int ->
  seed:int ->
  observer:Rrmp.Events.observer ->
  Rrmp.Group.t * Protocol.Msg_id.t * Node_id.t array
(** The shared workload builder (also used by Figure 7): a single
    region where [holders] random members hold the message at t = 0
    and everyone else starts recovery immediately. *)
