(** Uniform result container for every reproduced figure and extension
    experiment: a titled table plus free-form notes comparing the
    measured shape against the paper. *)

type t = {
  id : string;  (** e.g. "fig6", "ext_lambda" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> columns:string list -> ?notes:string list ->
  string list list -> t

val cell_f : float -> string
(** Render a float with 3 decimals. *)

val cell_pct : float -> string
(** Render a probability as a percentage with 3 decimals. *)

val cell_i : int -> string

val pp : Format.formatter -> t -> unit
(** Aligned ASCII table with title and notes. *)

val to_csv : t -> string

val save_csv : dir:string -> t -> string
(** Write [<dir>/<id>.csv]; returns the path. *)
