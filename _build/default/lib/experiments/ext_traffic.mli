(** Extension B: control-traffic comparison between feedback-based
    idle detection (which piggybacks on retransmission requests that
    exist anyway) and stability detection (which pays a periodic
    history-exchange cost even when nothing is lost).

    We sweep the region size with a fixed lossless stream: the paper's
    claim is that the two-phase scheme "does not introduce extra
    traffic into the system" while stability detection's cost grows
    with group size and session length. *)

val run :
  ?region_sizes:int list ->
  ?messages:int ->
  ?spacing:float ->
  ?horizon:float ->
  ?seed:int ->
  unit ->
  Report.t
