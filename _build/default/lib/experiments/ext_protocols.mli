(** Extension K: four reliable-multicast designs on one workload.

    RRMP (randomized recovery + two-phase buffering) against the three
    families the paper's introduction surveys: SRM (flat NACK/repair
    suppression, session-wide multicasts, ALF buffer-everything),
    Bimodal-Multicast-style anti-entropy (gossip digests + pull,
    fixed-time buffering), and the tree-based repair-server protocol
    (RMTP-like). Same topology, loss and message stream for all;
    reported: delivery completeness, mean time to full (group-wide)
    delivery, control packets, and buffer cost. *)

val run :
  ?sizes:int list ->
  ?messages:int ->
  ?spacing:float ->
  ?loss:float ->
  ?horizon:float ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
