(** Figure 7: #members that have received a message vs #members that
    buffer it, over time, when 1 member holds it initially (region of
    100). The buffered curve tracks the received curve while recovery
    is in progress, then collapses once an overwhelming majority (~96%
    in the paper) has the message and the idle threshold elapses. *)

val run :
  ?region:int ->
  ?sample_every:float ->
  ?horizon:float ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: region 100, sampling every 5 ms up to 140 ms (the
    paper's x-range), a single trial (the paper plots one run). *)
