(** Catalogue of every reproduced figure and extension experiment:
    the CLI and the bench harness iterate over this list. *)

type entry = {
  id : string;
  description : string;
  paper_ref : string;  (** figure/section in the paper, or "extension" *)
  run : quick:bool -> Report.t;
      (** [quick:true] trades trial counts for runtime (used by CI and
          the bench harness); [quick:false] runs publication-grade
          replication. *)
}

val all : entry list
(** In presentation order: fig3, fig4, fig6, fig7, fig8, fig9, then
    the extensions. *)

val find : string -> entry option

val ids : string list
