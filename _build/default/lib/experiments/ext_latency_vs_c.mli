(** Extension C: the buffer/latency trade-off of Section 3.2 — "large
    C recovers faster, small C saves memory but may take longer".

    A two-region hierarchy; the upstream region receives and idles a
    message (leaving ~C long-term bufferers), then the entire
    downstream region detects the loss. Remote requests land on
    upstream members that mostly discarded the message, so recovery
    latency includes the search; we sweep C. *)

val run :
  ?cs:float list ->
  ?upstream:int ->
  ?downstream:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
