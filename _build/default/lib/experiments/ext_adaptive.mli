(** Extension M: adaptive vs fixed idle threshold under a mis-estimated
    RTT.

    The paper chooses [T = 4x] the {e maximum} intra-region RTT
    (Section 3.1/4) and notes the choice depends on that RTT. If the
    region's real RTT is much larger than the configuration assumed, a
    fixed [T = 40 ms] fires prematurely: holders discard while probes
    are still in flight, requests land on empty buffers, and recovery
    slows. The adaptive mode ([Config.idle_rounds]) learns the RTT from
    request/repair exchanges and sets [T] per member.

    We run the Figure 6 workload (1 holder, 100 members) with the
    region's one-way delay scaled by a factor and compare fixed vs
    adaptive: unanswerable requests (a request reaching a member that
    already discarded), stragglers left unrecovered, and total local
    request traffic. *)

val run : ?delay_scales:float list -> ?region:int -> ?trials:int -> ?seed:int -> unit -> Report.t
