(** Extension A: buffer-space overhead of the two-phase scheme against
    the baseline policies the paper positions itself against — all run
    over the {e same} randomized recovery protocol, so the comparison
    isolates the buffering policy:

    - [two-phase] (the paper),
    - [fixed-time] (Bimodal Multicast style),
    - [stability detection] (periodic history exchange),
    - [buffer-all] (repair-server-style upper bound).

    A stream of messages is multicast into one region with independent
    per-receiver loss on the initial multicast (recovery traffic stays
    lossless, as in the paper's evaluation). We report the buffer·time
    integral per member, the peak buffer, the control traffic, and
    delivery completeness. *)

val run :
  ?region:int ->
  ?messages:int ->
  ?spacing:float ->
  ?reach_prob:float ->
  ?horizon:float ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
