(** Extension F: buffer handoff under churn (Section 3.2).

    After a message goes idle, its long-term bufferers are the only
    copies in the region. We then make members leave one after another.
    With RRMP's voluntary-leave handoff the long-term buffer migrates
    and the message stays recoverable; if members crash (no handoff),
    every departing bufferer permanently destroys a copy. *)

val run :
  ?region:int -> ?departures:int -> ?c:float -> ?trials:int -> ?seed:int -> unit -> Report.t
