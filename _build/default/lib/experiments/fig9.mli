(** Figure 9: search time as the region grows, with the number of
    long-term bufferers fixed at 10. The paper: a 10× larger region
    (100 → 1000 members) increases search time only ~2.2×, so buffering
    on 1% of the members costs little recovery latency while cutting
    buffer space 100×. *)

val run :
  ?region_sizes:int list ->
  ?bufferers:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: region sizes 100, 200, ..., 1000; 10 bufferers; 100
    trials per point. *)
