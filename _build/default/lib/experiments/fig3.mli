(** Figure 3: the probability that [k] members long-term-buffer an idle
    message, for different values of [C].

    Analytically this is Poisson(C) (the n → ∞ limit of
    Binomial(n, C/n)); we print the analytic pmf side by side with a
    Monte-Carlo estimate obtained by actually flipping each member's
    [C/n] coin, per Section 3.2. *)

val run :
  ?cs:float list ->
  ?max_k:int ->
  ?region:int ->
  ?mc_trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: C ∈ {5, 6, 7, 8} (the paper's curves), k = 0..20,
    region of 100 members, 20,000 Monte-Carlo trials. *)
