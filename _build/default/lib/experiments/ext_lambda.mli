(** Extension H: the λ trade-off of Section 2.2 — the expected number
    of remote requests per region-wide loss. Larger λ duplicates
    remote requests (and regional repair multicasts) but recovers the
    region faster; λ → 0 risks long waits. *)

val run :
  ?lambdas:float list ->
  ?upstream:int ->
  ?downstream:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
