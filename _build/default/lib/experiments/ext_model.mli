(** Extension J: the analytical search model against the simulation.

    {!Rrmp.Model.expected_search_time} predicts Figure 8's curve from a
    branching-searcher recurrence; this experiment prints the model
    beside freshly measured simulation values for both the Figure 8
    sweep (bufferers at n = 100) and the Figure 9 sweep (region size at
    10 bufferers). Agreement validates both the model and the protocol
    implementation. *)

val run :
  ?bufferer_counts:int list ->
  ?region_sizes:int list ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t
