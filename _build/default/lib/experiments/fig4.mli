(** Figure 4: the probability that {e no} member long-term-buffers an
    idle message, as a function of [C]. Analytically e^-C (0.25% at
    C = 6); cross-checked by Monte-Carlo coin flips and by full
    protocol runs (a whole group buffering, idling, and making its
    long-term decisions). *)

val run :
  ?cs:float list ->
  ?region:int ->
  ?mc_trials:int ->
  ?protocol_trials:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Defaults: C = 1..6, region 100, 100,000 coin-flip trials, 300
    protocol runs per C. *)
