(** Replication helpers shared by the experiment harnesses. *)

val mean_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float) -> Stats.Summary.t
(** Run the measurement once per seed [base_seed + 0 .. trials-1] and
    summarize. *)

val collect_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float list) -> Stats.Summary.t
(** Like {!mean_over_seeds} for measurements that yield several samples
    per run. *)
