let mean_over_seeds ~trials ~base_seed f =
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    Stats.Summary.add summary (f ~seed:(base_seed + i))
  done;
  summary

let collect_over_seeds ~trials ~base_seed f =
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    Stats.Summary.add_many summary (f ~seed:(base_seed + i))
  done;
  summary
