(** Extension D: load balancing of the buffering burden.

    The paper: "unlike tree-based protocols where a repair server bears
    the entire burden of buffering messages for a local region, RRMP
    achieves better load balancing by spreading the load among all
    members". We run the same lossy stream through RRMP and through the
    tree-based baseline and compare how the buffer·time integral is
    distributed across members (max share and Gini coefficient). *)

val run :
  ?region:int ->
  ?messages:int ->
  ?spacing:float ->
  ?reach_prob:float ->
  ?horizon:float ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Report.t

val gini : float list -> float
(** Gini coefficient of a non-negative distribution (0 = perfectly
    even, → 1 = concentrated on one member). *)
