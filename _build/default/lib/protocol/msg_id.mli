(** Message identifier: [source address, sequence number] — the
    "commonly used identifier" of the paper (footnote 2). *)

type t = { source : Node_id.t; seq : int }

val make : source:Node_id.t -> seq:int -> t
(** @raise Invalid_argument on negative sequence number. *)

val source : t -> Node_id.t

val seq : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by source, then sequence number. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Table : Hashtbl.S with type key = t
