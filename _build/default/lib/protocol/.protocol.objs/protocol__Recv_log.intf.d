lib/protocol/recv_log.mli: Msg_id Node_id
