lib/protocol/gap_detect.ml: Int List Set
