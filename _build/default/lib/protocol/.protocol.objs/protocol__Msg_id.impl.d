lib/protocol/msg_id.ml: Format Hashtbl Int Map Node_id Set
