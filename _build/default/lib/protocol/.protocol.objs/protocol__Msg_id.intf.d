lib/protocol/msg_id.mli: Format Hashtbl Map Node_id Set
