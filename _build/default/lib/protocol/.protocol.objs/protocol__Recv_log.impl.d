lib/protocol/recv_log.ml: Gap_detect List Msg_id Node_id
