lib/protocol/gap_detect.mli:
