(* Churn: receivers continuously join and leave while a stream is
   multicast. Voluntary leavers hand their long-term buffer to random
   peers (Section 3.2), so old messages stay recoverable even after
   every original bufferer has left.

   Run with: dune exec examples/churn_handoff.exe
*)

let () =
  let topology = Topology.single_region ~size:40 in
  let group = Rrmp.Group.create ~seed:11 ~topology () in
  let sim = Rrmp.Group.sim group in
  let rng = Engine.Rng.create ~seed:1234 in

  let handoffs = ref 0 in
  (* churn driver: every ~30 ms a random member leaves (with handoff)
     and a new one joins, for 3 simulated seconds *)
  let sender = Rrmp.Member.node (Rrmp.Group.sender group) in
  let rec churn_tick () =
    if Engine.Sim.now sim < 3_000.0 then begin
      let nodes = Topology.all_nodes (Rrmp.Group.topology group) in
      let candidates =
        Array.of_seq
          (Seq.filter (fun n -> not (Node_id.equal n sender)) (Array.to_seq nodes))
      in
      if Array.length candidates > 10 then begin
        Rrmp.Group.leave group (Engine.Rng.pick rng candidates);
        incr handoffs
      end;
      ignore (Rrmp.Group.join group (Region_id.of_int 0));
      ignore
        (Engine.Sim.schedule sim ~delay:(Engine.Rng.exponential rng ~mean:30.0) churn_tick)
    end
  in
  ignore (Engine.Sim.schedule sim ~delay:10.0 churn_tick);

  (* multicast a message every 100 ms during the churn *)
  let ids = ref [] in
  for i = 0 to 19 do
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int i *. 100.0) (fun () ->
           ids := Rrmp.Group.multicast group () :: !ids))
  done;

  Rrmp.Group.run ~until:3_000.0 group;

  Format.printf "churn: %d members left (with handoff) and as many joined@." !handoffs;
  Format.printf "group size now: %d@." (Topology.node_count (Rrmp.Group.topology group));

  (* despite the churn, the early messages are still buffered somewhere *)
  let buffered_counts =
    List.rev_map (fun id -> Rrmp.Group.count_buffered group id) !ids
  in
  Format.printf "long-term copies per message (oldest first): %s@."
    (String.concat " " (List.map string_of_int buffered_counts));
  let survivors = List.length (List.filter (fun c -> c > 0) buffered_counts) in
  Format.printf "%d/20 messages still recoverable after heavy churn@." survivors;

  (* and a freshly joined member can still fetch the very first one *)
  match List.rev !ids with
  | [] -> ()
  | first :: _ ->
    let newcomer = Rrmp.Group.join group (Region_id.of_int 0) in
    Rrmp.Member.inject_loss newcomer first;
    Rrmp.Group.run group;
    Format.printf "newcomer recovered the first message: %b@."
      (Rrmp.Member.has_received newcomer first)
