(* Wide-area scenario: a tree of regions, a region-wide loss deep in
   the hierarchy, and the full RRMP machinery — remote recovery to the
   parent region, record-and-relay, regional multicast of the repair,
   and the two-phase buffering with a later search.

   Run with: dune exec examples/wide_area.exe
*)

let () =
  (* 7 regions in a binary tree (1 + 2 + 4), 20 members each: the
     sender's region at the root, leaves two WAN hops away *)
  let topology = Topology.balanced_tree ~fanout:2 ~levels:3 ~region_size:20 in

  (* observe recovery latencies per region *)
  let latencies = Hashtbl.create 8 in
  let observer ~time:_ ~self event =
    match event with
    | Rrmp.Events.Recovered { latency; _ } ->
      let key = Node_id.to_int self / 20 in
      let existing = Option.value ~default:[] (Hashtbl.find_opt latencies key) in
      Hashtbl.replace latencies key (latency :: existing)
    | _ -> ()
  in
  let group = Rrmp.Group.create ~seed:7 ~observer ~topology () in

  (* the initial IP multicast misses leaf region 6 entirely and loses
     30% of the packets to regions 3..5 *)
  let workload_rng = Engine.Rng.create ~seed:99 in
  let id =
    Rrmp.Group.multicast_reaching group
      ~reach:(fun n ->
        let region = Node_id.to_int n / 20 in
        if region = 6 then false
        else if region >= 3 then Engine.Rng.bernoulli workload_rng ~p:0.7
        else true)
      ()
  in

  (* let the initial multicast propagate, then everyone that missed the
     message notices (think: session message) *)
  Rrmp.Group.run ~until:200.0 group;
  List.iter
    (fun m -> if not (Rrmp.Member.has_received m id) then Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members group);

  Rrmp.Group.run group;

  Format.printf "message delivered to all %d members: %b@."
    (Topology.node_count topology)
    (Rrmp.Group.received_by_all group id);

  Format.printf "@.mean recovery latency by region (hops from the sender matter):@.";
  List.iter
    (fun region ->
      match Hashtbl.find_opt latencies region with
      | None -> Format.printf "  region %d: no losses@." region
      | Some ls ->
        let mean = List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls) in
        Format.printf "  region %d: %d losses, mean %.1f ms@." region (List.length ls) mean)
    [ 0; 1; 2; 3; 4; 5; 6 ];

  let net = Rrmp.Group.net group in
  Format.printf "@.remote requests: %d, regional repair multicasts: %d@."
    (Netsim.Network.stats net ~cls:"remote-req").Netsim.Network.sent
    (Netsim.Network.stats net ~cls:"regional-repair").Netsim.Network.sent;

  (* much later, a new receiver joins leaf region 6 and needs the old
     message: only the ~C long-term bufferers still hold it, and the
     randomized search finds one *)
  let late = Rrmp.Group.join group (Region_id.of_int 6) in
  Rrmp.Member.inject_loss late id;
  Rrmp.Group.run group;
  Format.printf "@.late joiner recovered the message from long-term bufferers: %b@."
    (Rrmp.Member.has_received late id);
  Format.printf "bufferers still holding it: %d of %d members@."
    (Rrmp.Group.count_buffered group id)
    (Topology.node_count topology)
