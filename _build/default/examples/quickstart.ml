(* Quickstart: a two-region RRMP session under 20% packet loss.

   Build a topology, create a group, multicast a few messages, run the
   simulation, and inspect delivery and buffering. Run with:

     dune exec examples/quickstart.exe
*)

let () =
  (* 30 receivers near the sender, 30 in a downstream region *)
  let topology = Topology.chain ~sizes:[ 30; 30 ] in

  (* the paper's parameters: T = 40 ms, C = 6, lambda = 1; session
     messages every 50 ms so tail losses are detected *)
  let config = { Rrmp.Config.default with Rrmp.Config.session_interval = Some 50.0 } in

  let group =
    Rrmp.Group.create ~seed:42 ~config ~loss:(Loss.Bernoulli 0.2) ~topology ()
  in

  (* multicast ten messages from the sender *)
  let ids = List.init 10 (fun _ -> Rrmp.Group.multicast group ()) in

  (* run the virtual clock for two simulated seconds *)
  Rrmp.Group.run ~until:2_000.0 group;

  List.iteri
    (fun i id ->
      Format.printf "message %d: received by %d/60 members, still buffered at %d@." i
        (Rrmp.Group.count_received group id)
        (Rrmp.Group.count_buffered group id))
    ids;

  let net = Rrmp.Group.net group in
  Format.printf "@.total packets on the wire: %d (%d delivered)@."
    (Netsim.Network.total_sent net)
    (Netsim.Network.total_delivered net);
  Format.printf "repair traffic: %d local requests, %d remote requests, %d repairs@."
    (Netsim.Network.stats net ~cls:"local-req").Netsim.Network.sent
    (Netsim.Network.stats net ~cls:"remote-req").Netsim.Network.sent
    (Netsim.Network.stats net ~cls:"repair").Netsim.Network.sent;

  (* every message ends up buffered at roughly C = 6 members per region *)
  let expected = 2.0 *. config.Rrmp.Config.expected_bufferers in
  let mean_buffered =
    List.fold_left
      (fun acc id -> acc +. float_of_int (Rrmp.Group.count_buffered group id))
      0.0 ids
    /. 10.0
  in
  Format.printf "mean long-term bufferers per message: %.1f (expected about %.0f)@."
    mean_buffered expected
