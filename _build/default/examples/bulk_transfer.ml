(* Bulk transfer: the scenario the paper's introduction motivates.
   RMTP-style tree protocols were designed for multicast file transfer
   and buffer the whole file at the repair server; RRMP's two-phase
   policy keeps only what is still needed. We push a 200-message "file"
   through both and compare where the bytes sit.

   Run with: dune exec examples/bulk_transfer.exe
*)

let messages = 200

let spacing = 10.0 (* ms between data packets *)

let reach_prob = 0.9 (* each receiver gets each packet with p = 0.9 *)

let schedule_stream sim send =
  for i = 0 to messages - 1 do
    ignore (Engine.Sim.schedule_at sim ~at:(float_of_int i *. spacing) send)
  done

let () =
  let region = 50 in

  (* --- RRMP ------------------------------------------------------- *)
  let rrmp_group = Rrmp.Group.create ~seed:5 ~topology:(Topology.single_region ~size:region) () in
  let rng1 = Engine.Rng.create ~seed:77 in
  schedule_stream (Rrmp.Group.sim rrmp_group) (fun () ->
      ignore
        (Rrmp.Group.multicast_reaching rrmp_group
           ~reach:(fun _ -> Engine.Rng.bernoulli rng1 ~p:reach_prob)
           ()));
  Rrmp.Group.run ~until:10_000.0 rrmp_group;
  let rrmp_peak =
    List.fold_left
      (fun acc m -> max acc (Rrmp.Buffer.peak_bytes (Rrmp.Member.buffer m)))
      0
      (Rrmp.Group.members rrmp_group)
  in
  let rrmp_end = Rrmp.Group.total_buffered_messages rrmp_group in

  (* --- tree-based baseline ---------------------------------------- *)
  let tree =
    Baselines.Tree_rmtp.create ~seed:5 ~topology:(Topology.single_region ~size:region) ()
  in
  let rng2 = Engine.Rng.create ~seed:77 in
  schedule_stream (Baselines.Tree_rmtp.sim tree) (fun () ->
      ignore
        (Baselines.Tree_rmtp.multicast_reaching tree
           ~reach:(fun _ -> Engine.Rng.bernoulli rng2 ~p:reach_prob)
           ()));
  Baselines.Tree_rmtp.run ~until:10_000.0 tree;
  let server = Baselines.Tree_rmtp.repair_server tree (Region_id.of_int 0) in
  let server_peak = Rrmp.Buffer.peak_bytes (Baselines.Tree_rmtp.buffer_of tree server) in

  Format.printf "bulk transfer of %d x 1KiB messages into a %d-member region:@.@." messages
    region;
  Format.printf "  tree baseline: the repair server alone peaked at %d KiB (the whole file)@."
    (server_peak / 1024);
  Format.printf "  rrmp:          the busiest member peaked at %d KiB@." (rrmp_peak / 1024);
  Format.printf "  rrmp:          %d long-term entries remain group-wide at the end@."
    rrmp_end;
  Format.printf "@.the factor between the two peaks (%.1fx) is the paper's point:@."
    (float_of_int server_peak /. float_of_int (max rrmp_peak 1));
  Format.printf "two-phase buffering keeps per-member state small and short-lived@."
