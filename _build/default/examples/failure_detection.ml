(* Gossip-style failure detection inside an RRMP session.

   RRMP was built on the gossip failure-detection service of van
   Renesse, Minsky & Hayden; this example runs the detector over the
   protocol's own network, silently crashes two members, and shows the
   survivors converging on the same suspect list.

   Run with: dune exec examples/failure_detection.exe
*)

let () =
  let topology = Topology.single_region ~size:20 in
  let group = Rrmp.Group.create ~seed:13 ~topology () in
  Rrmp.Group.enable_failure_detection group ~gossip_interval:10.0 ~fail_timeout:150.0;

  (* traffic keeps flowing while the detector gossips underneath *)
  let id = Rrmp.Group.multicast group () in

  (* two members crash silently at t = 300 ms: no handoff, no goodbye —
     their heartbeats simply stop *)
  let casualties = [ Node_id.of_int 7; Node_id.of_int 13 ] in
  ignore
    (Engine.Sim.schedule (Rrmp.Group.sim group) ~delay:300.0 (fun () ->
         List.iter
           (fun node -> Rrmp.Member.crash (Rrmp.Group.member group node))
           casualties));

  Rrmp.Group.run ~until:2_000.0 group;

  Format.printf "message delivered before the crashes: %d/20 members@."
    (Rrmp.Group.count_received group id);

  (* every survivor should now suspect exactly the crashed members *)
  let agree = ref 0 in
  List.iter
    (fun m ->
      if not (List.exists (Node_id.equal (Rrmp.Member.node m)) casualties) then begin
        let suspects = Rrmp.Member.suspects m in
        let expected = List.sort Node_id.compare casualties in
        if List.map Node_id.to_int suspects = List.map Node_id.to_int expected then incr agree
      end)
    (Rrmp.Group.members group);
  Format.printf "survivors agreeing on the suspect list {n7, n13}: %d/18@." !agree;

  let gossip = (Netsim.Network.stats (Rrmp.Group.net group) ~cls:"gossip").Netsim.Network.sent in
  Format.printf "heartbeat gossip packets exchanged: %d (one per member per 10 ms)@." gossip
