(* Message implosion: why error recovery is distributed.

   The paper's introduction: "putting the responsibility of error
   recovery entirely on the sender can lead to a message implosion
   problem". With an egress bandwidth limit, a single repair server
   must serialize one retransmission per receiver; RRMP's repaired
   members immediately serve their neighbours, so repair capacity
   grows with the epidemic.

   Run with: dune exec examples/implosion.exe
*)

let region = 100

let bandwidth = 100.0 (* bytes/ms: a 1 KiB repair occupies the link ~10 ms *)

let () =
  (* --- centralized: everyone NACKs the one server ------------------ *)
  let tree =
    Baselines.Tree_rmtp.create ~seed:1 ~bandwidth
      ~topology:(Topology.single_region ~size:region)
      ()
  in
  (* the initial multicast reaches nobody; a follow-up packet reveals
     the gap to all receivers at once *)
  let lost = Baselines.Tree_rmtp.multicast_reaching tree ~reach:(fun _ -> false) () in
  let _probe = Baselines.Tree_rmtp.multicast tree () in
  let sim = Baselines.Tree_rmtp.sim tree in
  let server = Baselines.Tree_rmtp.repair_server tree (Region_id.of_int 0) in
  let worst_backlog = ref 0.0 in
  let rec watch t =
    if t < 5_000.0 then
      ignore
        (Engine.Sim.schedule_at sim ~at:t (fun () ->
             let b = Netsim.Network.egress_backlog (Baselines.Tree_rmtp.net tree) server in
             if b > !worst_backlog then worst_backlog := b;
             watch (t +. 10.0)))
  in
  watch 0.0;
  let tree_done = ref Float.nan in
  let rec probe t =
    if t < 5_000.0 then
      ignore
        (Engine.Sim.schedule_at sim ~at:t (fun () ->
             if Float.is_nan !tree_done && Baselines.Tree_rmtp.count_received tree lost = region
             then tree_done := t;
             probe (t +. 5.0)))
  in
  probe 0.0;
  Baselines.Tree_rmtp.run ~until:5_000.0 tree;

  (* --- distributed: RRMP local recovery ---------------------------- *)
  let group =
    Rrmp.Group.create ~seed:1 ~bandwidth ~topology:(Topology.single_region ~size:region) ()
  in
  let id = Rrmp.Group.multicast_reaching group ~reach:(fun _ -> false) () in
  List.iter
    (fun m -> if not (Rrmp.Member.has_received m id) then Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members group);
  let gsim = Rrmp.Group.sim group in
  let rrmp_done = ref Float.nan in
  let rec gprobe t =
    if t < 5_000.0 then
      ignore
        (Engine.Sim.schedule_at gsim ~at:t (fun () ->
             if Float.is_nan !rrmp_done && Rrmp.Group.count_received group id = region then
               rrmp_done := t;
             gprobe (t +. 5.0)))
  in
  gprobe 0.0;
  Rrmp.Group.run ~until:5_000.0 group;

  Format.printf "one 1 KiB message, %d receivers to repair, %.0f bytes/ms egress:@.@."
    (region - 1) bandwidth;
  Format.printf "  repair server:  everyone repaired at %.0f ms (server backlog peaked \
                 at %.0f ms of queued repairs)@."
    !tree_done !worst_backlog;
  Format.printf "  rrmp:           everyone repaired at %.0f ms@." !rrmp_done;
  Format.printf
    "@.the server serializes ~%d repairs on one link while every unrepaired@."
    (region - 1);
  Format.printf "receiver keeps re-NACKing it (each NACK queues another repair) - the@.";
  Format.printf "classic implosion collapse. rrmp's repaired members answer their@.";
  Format.printf "neighbours in parallel: the implosion argument for distributed error@.";
  Format.printf "recovery (paper, Section 1)@."
