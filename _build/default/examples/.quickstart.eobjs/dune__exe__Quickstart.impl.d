examples/quickstart.ml: Format List Loss Netsim Rrmp Topology
