examples/bulk_transfer.ml: Baselines Engine Format List Region_id Rrmp Topology
