examples/implosion.ml: Baselines Engine Float Format List Netsim Region_id Rrmp Topology
