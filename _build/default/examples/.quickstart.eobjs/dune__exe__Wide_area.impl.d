examples/wide_area.ml: Engine Format Hashtbl List Netsim Node_id Option Region_id Rrmp Topology
