examples/quickstart.mli:
