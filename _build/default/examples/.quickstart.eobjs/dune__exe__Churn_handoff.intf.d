examples/churn_handoff.mli:
