examples/failure_detection.ml: Engine Format List Netsim Node_id Rrmp Topology
