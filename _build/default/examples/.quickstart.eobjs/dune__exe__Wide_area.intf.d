examples/wide_area.mli:
