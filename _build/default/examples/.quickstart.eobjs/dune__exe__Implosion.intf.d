examples/implosion.mli:
