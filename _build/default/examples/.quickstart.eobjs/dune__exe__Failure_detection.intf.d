examples/failure_detection.mli:
