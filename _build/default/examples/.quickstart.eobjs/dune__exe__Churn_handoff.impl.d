examples/churn_handoff.ml: Array Engine Format List Node_id Region_id Rrmp Seq String Topology
